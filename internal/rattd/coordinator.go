package rattd

import (
	"math"
	"strconv"
	"sync"
)

// This file is the control plane of the sharded verifier tier: a
// Coordinator that (a) fixes the prover->shard assignment via
// rendezvous hashing so clients and daemons agree without talking to
// each other, and (b) leases disjoint epoch windows of the challenge
// nonce-counter space to shards so every shard mints globally unique
// SMART challenges without sharing a counter (and hence without
// sharing a lock) on any request path. HYDRA's isolated verifier
// domains motivate the shape; ERASMUS makes it cheap, because
// self-measuring provers only ever touch "their" shard.

// DefaultLeaseWindow is how many challenge-nonce counters one epoch
// lease spans. A shard returns to the coordinator once per window —
// at the default, once per 65536 SMART challenges — so coordination
// cost is amortized to noise while a crashed shard strands at most
// one window of the (2^64) counter space.
const DefaultLeaseWindow = 1 << 16

// EpochLease grants one shard the half-open challenge-counter range
// [Lo, Hi). Within a lease the shard increments a private counter;
// across leases the coordinator guarantees disjointness, so two
// shards can never issue the same challenge nonce. Epoch is the
// coordinator's lease sequence number (monotonic across the tier).
type EpochLease struct {
	Shard int    // shard index the lease was granted to
	Epoch uint64 // tier-wide lease sequence number
	Lo    uint64 // first counter in the lease (inclusive)
	Hi    uint64 // first counter past the lease (exclusive)
}

// Valid reports whether the lease spans a non-empty counter range.
func (l EpochLease) Valid() bool { return l.Lo < l.Hi }

// Coordinator hands out epoch leases. It is the only cross-shard
// synchronization point in the tier, and it is off every hot path:
// shards call Lease once per exhausted window, never per report.
type Coordinator struct {
	mu     sync.Mutex
	shards int
	window uint64
	next   uint64 // next unleased counter
	epoch  uint64 // next lease sequence number
}

// NewCoordinator creates a coordinator for n shards handing out
// leases of the given window size (0 means DefaultLeaseWindow).
func NewCoordinator(n int, window uint64) *Coordinator {
	if n < 1 {
		n = 1
	}
	if window == 0 {
		window = DefaultLeaseWindow
	}
	// Counter 0 is never leased: the pre-shard daemon started its
	// counter sequence at 1, and keeping that origin makes a 1-shard
	// tier byte-identical to a plain Server.
	return &Coordinator{shards: n, window: window, next: 1}
}

// Shards returns the tier width the coordinator was built for.
func (c *Coordinator) Shards() int { return c.shards }

// Lease grants shard the next unleased window. Safe for concurrent
// use by all shards.
func (c *Coordinator) Lease(shard int) EpochLease {
	c.mu.Lock()
	defer c.mu.Unlock()
	lo := c.next
	hi := lo + c.window
	if hi < lo { // counter space exhausted (2^64 challenges in)
		hi = math.MaxUint64
	}
	l := EpochLease{Shard: shard, Epoch: c.epoch, Lo: lo, Hi: hi}
	c.epoch++
	c.next = hi
	return l
}

// Observe registers a lease granted by an earlier coordinator
// incarnation (a shard restored from checkpoint re-announces its
// lease). Future leases are guaranteed disjoint from every observed
// one, and the epoch sequence resumes past it.
func (c *Coordinator) Observe(l EpochLease) {
	if !l.Valid() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l.Hi > c.next {
		c.next = l.Hi
	}
	if l.Epoch >= c.epoch {
		c.epoch = l.Epoch + 1
	}
}

// ShardFor maps a prover name onto one of n shards by rendezvous
// (highest-random-weight) hashing: the shard whose mixed (name,
// shard) weight is largest wins. Clients and the coordinator share
// this one pure function, so routing needs no directory service, and
// growing the tier from n to n+1 shards reassigns only ~1/(n+1) of
// the provers (the minimal-disruption property ring hashing needs
// virtual nodes to approximate).
func ShardFor(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv64a(name)
	best, bestW := 0, uint64(0)
	for i := 0; i < n; i++ {
		if w := mix64(h ^ (uint64(i)+1)*0x9e3779b97f4a7c15); w >= bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ShardName is the endpoint name of shard i in a multi-shard tier
// ("rattd0", "rattd1", ...). A 1-shard tier keeps the plain "rattd"
// name so it is indistinguishable from an unsharded daemon.
func ShardName(i int) string { return "rattd" + strconv.Itoa(i) }

// tierShardName picks the endpoint name for shard i of an n-shard
// tier; both RunFleet and ServeTier route through it so client and
// daemon sides cannot drift.
func tierShardName(i, n int) string {
	if n <= 1 {
		return "rattd"
	}
	return ShardName(i)
}

// fnv64a is FNV-1a over the name bytes — allocation-free (no []byte
// conversion) and stable across processes, which the routing contract
// requires: the same name must land on the same shard from any
// client, daemon, or checkpoint epoch.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// turns the (name, shard) combination into an independent uniform
// weight, which is what makes rendezvous hashing balance.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
