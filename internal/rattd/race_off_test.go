//go:build !race

package rattd

const raceEnabled = false
