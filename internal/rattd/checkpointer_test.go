package rattd

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"saferatt/internal/core"
	"saferatt/internal/transport"
)

// ckptFixture is a local server with a small enrolled fleet and an
// ingest helper for dirtying individual provers.
type ckptFixture struct {
	srv  *Server
	prvs []*Prover
}

func newCkptFixture(t *testing.T, fleet int) *ckptFixture {
	t.Helper()
	fx := &ckptFixture{srv: localServer(t, Config{Stripes: 4})}
	image := GoldenImage(7, testMem, testBlock)
	for i := 0; i < fleet; i++ {
		p, err := NewProver(proverName(i), DefaultKey, image, testBlock)
		if err != nil {
			t.Fatal(err)
		}
		fx.prvs = append(fx.prvs, p)
		fx.ingest(t, i, 1)
	}
	return fx
}

func (fx *ckptFixture) ingest(t *testing.T, i int, ctr uint64) {
	t.Helper()
	r := selfMeasure(t, fx.prvs[i], ctr)
	fx.srv.Ingest(fx.prvs[i].Name, transport.KindCollection, []core.Report{r})
}

func proverName(i int) string {
	// Fixed-width names so per-stripe sorted order is also numeric.
	const digits = "0123456789"
	return "prv" + string([]byte{
		digits[i/10000%10], digits[i/1000%10], digits[i/100%10], digits[i/10%10], digits[i%10],
	})
}

// TestCheckpointerChain drives the full base→delta→compaction cycle
// and checks the on-disk chain always restores to exactly the live
// state.
func TestCheckpointerChain(t *testing.T) {
	const fleet = 20
	fx := newCkptFixture(t, fleet)
	path := filepath.Join(t.TempDir(), "cp")
	ck := NewCheckpointer(fx.srv, CheckpointerConfig{Path: path, MaxDeltas: 3, MaxDeltaFrac: 100})

	// First tick: a base holding the whole fleet.
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.Fulls != 1 || st.LastDirty != fleet {
		t.Fatalf("after base: %+v", st)
	}
	cp, chain, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Applied != 0 || len(cp.Erasmus) != fleet {
		t.Fatalf("base restore: chain %+v, %d provers", chain, len(cp.Erasmus))
	}

	// Clean server: the tick is a skip, no delta file appears.
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.Skips != 1 {
		t.Fatalf("clean tick did not skip: %+v", st)
	}
	if _, err := os.Stat(path + ".d1"); !os.IsNotExist(err) {
		t.Fatalf("skip still wrote a delta: %v", err)
	}

	// Dirty two provers: the delta holds exactly those two.
	fx.ingest(t, 0, 2)
	fx.ingest(t, 1, 2)
	if d := fx.srv.DirtyCount(); d != 2 {
		t.Fatalf("dirty count %d, want 2", d)
	}
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.Deltas != 1 || st.LastDirty != 2 {
		t.Fatalf("after delta: %+v", st)
	}
	db, err := os.ReadFile(path + ".d1")
	if err != nil {
		t.Fatal(err)
	}
	dcp, err := DecodeCheckpoint(db)
	if err != nil {
		t.Fatal(err)
	}
	if !dcp.Delta || dcp.ChainID != 1 || dcp.Seq != 1 || len(dcp.Erasmus) != 2 {
		t.Fatalf("delta file holds %d provers (%+v), want the 2 dirtied", len(dcp.Erasmus), dcp)
	}
	assertChainMatchesLive(t, path, fx.srv, 1)

	// Two more deltas, then the 4th dirty tick trips MaxDeltas=3 and
	// compacts: a fresh base under a new chain ID, old deltas gone.
	fx.ingest(t, 2, 2)
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	fx.ingest(t, 3, 2)
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	fx.ingest(t, 4, 2)
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.Fulls != 2 || st.Compactions != 1 || st.Deltas != 3 {
		t.Fatalf("after compaction: %+v", st)
	}
	for seq := 1; seq <= 3; seq++ {
		if _, err := os.Stat(deltaPath(path, uint32(seq))); !os.IsNotExist(err) {
			t.Fatalf("compaction left delta %d behind", seq)
		}
	}
	cp2, _, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.ChainID != 2 {
		t.Fatalf("compacted base chain id %d, want 2", cp2.ChainID)
	}
	assertChainMatchesLive(t, path, fx.srv, 0)

	// Restore the chain into a fresh server: a previously-accepted
	// counter is rejected exactly once, a fresh one accepted.
	s2 := localServer(t, Config{Stripes: 2})
	s2.Restore(cp2)
	r := selfMeasure(t, fx.prvs[0], 2) // accepted pre-checkpoint
	s2.Ingest(fx.prvs[0].Name, transport.KindCollection, []core.Report{r})
	if c := s2.Counts(); c.Replays != 1 || c.Accepted != 0 {
		t.Fatalf("replay after restore: %+v", c)
	}
	r = selfMeasure(t, fx.prvs[0], 3)
	s2.Ingest(fx.prvs[0].Name, transport.KindCollection, []core.Report{r})
	if c := s2.Counts(); c.Accepted != 1 {
		t.Fatalf("fresh counter after restore: %+v", c)
	}
}

// assertChainMatchesLive loads the chain and compares against the
// server's in-memory snapshot.
func assertChainMatchesLive(t *testing.T, path string, s *Server, wantDeltas int) {
	t.Helper()
	cp, chain, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Applied != wantDeltas || chain.Truncated || chain.Dropped != 0 {
		t.Fatalf("chain %+v, want %d clean deltas", chain, wantDeltas)
	}
	live := s.Checkpoint()
	if !reflect.DeepEqual(cp.Erasmus, live.Erasmus) || !reflect.DeepEqual(cp.Seed, live.Seed) {
		t.Fatalf("restored chain diverges from live state:\n got %d/%d entries\nwant %d/%d",
			len(cp.Erasmus), len(cp.Seed), len(live.Erasmus), len(live.Seed))
	}
}

// TestCheckpointerCrashWindows covers the crash shapes the file
// protocol promises to survive: a temp file left between write and
// rename, stale deltas from a chain whose compaction crashed before
// cleanup, and a gap in the delta sequence.
func TestCheckpointerCrashWindows(t *testing.T) {
	const fleet = 4
	fx := newCkptFixture(t, fleet)
	path := filepath.Join(t.TempDir(), "cp")
	ck := NewCheckpointer(fx.srv, CheckpointerConfig{Path: path, MaxDeltaFrac: 100})
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	fx.ingest(t, 0, 2)
	if err := ck.Tick(); err != nil { // d1
		t.Fatal(err)
	}
	want := fx.srv.Checkpoint()

	// Crash between temp-write and rename: the half-written temp must
	// be invisible to restore.
	if err := os.WriteFile(path+".tmp", []byte("torn base"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, chain, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Applied != 1 || !reflect.DeepEqual(cp.Erasmus, want.Erasmus) {
		t.Fatalf("temp file perturbed restore: chain %+v", chain)
	}

	// Crash after a compaction's rename but before delta cleanup: a
	// new base plus the old chain's d1. The stale delta must be
	// dropped by chain ID, not applied.
	base2 := encodeCP(t, &Checkpoint{
		Lease:   want.Lease,
		Erasmus: want.Erasmus,
		Seed:    want.Seed,
		ChainID: 2,
	})
	if err := os.WriteFile(path, base2, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, chain, err = LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Applied != 0 || chain.Dropped != 1 {
		t.Fatalf("stale delta not dropped: %+v", chain)
	}
	if !reflect.DeepEqual(cp.Erasmus, want.Erasmus) {
		t.Fatal("stale delta perturbed restored state")
	}

	// A sequence gap ends the chain: d2 missing means d3 is never read
	// (even if well-formed).
	d2 := encodeCP(t, &Checkpoint{
		Erasmus: map[string]DedupWindow{proverName(1): windowOf(9)},
		Seed:    map[string]uint64{},
		Delta:   true, ChainID: 2, Seq: 1,
	})
	d3 := encodeCP(t, &Checkpoint{
		Erasmus: map[string]DedupWindow{proverName(2): windowOf(9)},
		Seed:    map[string]uint64{},
		Delta:   true, ChainID: 2, Seq: 3, // gap: seq 2 never written
	})
	if err := os.WriteFile(deltaPath(path, 2), d3, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(deltaPath(path, 1))
	if err := os.WriteFile(deltaPath(path, 1), d2, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, chain, err = LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Applied != 1 || chain.Dropped != 1 {
		t.Fatalf("gapped chain: %+v, want 1 applied 1 dropped", chain)
	}
	if w := cp.Erasmus[proverName(2)]; w.Seen(9) {
		t.Fatal("delta beyond the gap was applied")
	}
}

// TestCheckpointerWriteErrorForcesFull pins the recovery rule: a
// failed write consumed the dirty set, so the next successful write
// must be a full base that recovers those records.
func TestCheckpointerWriteErrorForcesFull(t *testing.T) {
	const fleet = 4
	fx := newCkptFixture(t, fleet)
	path := filepath.Join(t.TempDir(), "cp")
	ck := NewCheckpointer(fx.srv, CheckpointerConfig{Path: path, MaxDeltaFrac: 100})
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}

	// Sabotage the next delta: a directory squats on its path, so the
	// write fails after WriteCheckpoint already drained the dirty set.
	fx.ingest(t, 0, 2)
	if err := os.Mkdir(deltaPath(path, 1), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := ck.Tick(); err == nil {
		t.Fatal("delta write into a directory succeeded")
	}
	if st := ck.Stats(); st.Errors != 1 {
		t.Fatalf("error not counted: %+v", st)
	}
	if err := os.Remove(deltaPath(path, 1)); err != nil {
		t.Fatal(err)
	}

	// Only prover 1 is dirty now, but the recovery write must be a
	// full base — and it must contain prover 0's counter 2, which the
	// failed delta consumed.
	fx.ingest(t, 1, 2)
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.Fulls != 2 || st.Deltas != 0 {
		t.Fatalf("recovery write was not a full: %+v", st)
	}
	cp, _, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if w := cp.Erasmus[proverName(0)]; !w.Seen(2) {
		t.Fatal("record consumed by the failed write was lost")
	}
	if len(cp.Erasmus) != fleet {
		t.Fatalf("recovery base holds %d provers, want %d", len(cp.Erasmus), fleet)
	}
}

// TestCheckpointerHeaderOnlyDelta checks that advancing the nonce
// cursor alone (challenges minted, no report accepted) still
// persists: the lease position matters for nonce uniqueness across a
// restart even when no prover state changed.
func TestCheckpointerHeaderOnlyDelta(t *testing.T) {
	fx := newCkptFixture(t, 2)
	path := filepath.Join(t.TempDir(), "cp")
	ck := NewCheckpointer(fx.srv, CheckpointerConfig{Path: path, MaxDeltaFrac: 100})
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	fx.srv.Ingest(fx.prvs[0].Name, transport.KindHello, nil) // mints a challenge
	if err := ck.Tick(); err != nil {
		t.Fatal(err)
	}
	if st := ck.Stats(); st.Deltas != 1 || st.LastDirty != 0 {
		t.Fatalf("nonce-only tick: %+v", st)
	}
	cp, chain, err := LoadChain(path)
	if err != nil {
		t.Fatal(err)
	}
	_, liveNonce := fx.srv.leaseState()
	if chain.Applied != 1 || cp.NonceCtr != liveNonce {
		t.Fatalf("nonce cursor not persisted: chain %+v, got %d want %d", chain, cp.NonceCtr, liveNonce)
	}
}
