// Package rattd implements the networked verifier daemon: a
// transport-agnostic attestation service that answers SMART
// challenge/response hellos (§2.2), ingests ERASMUS collection bundles
// and SeED prover-initiated reports (§3.3) for thousands of provers,
// and verifies everything through the amortized verifier.Batch fast
// path against one shared golden image.
//
// The daemon speaks typed transport messages only, so the same Server
// runs over transport.Sim in deterministic tests and over
// transport.Net on real UDP sockets (cmd/rattd). It keeps no
// simulation clock: freshness bookkeeping that needs wall time lives
// with the caller; protocol-level replay protection (nonce binding,
// monotonic counters) is self-contained.
package rattd

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"math"
	"sync"

	"saferatt/internal/core"
	"saferatt/internal/suite"
	"saferatt/internal/transport"
	"saferatt/internal/verifier"
)

// DefaultKey is the fleet-shared attestation key devices ship with
// (mirrors the device default; real deployments provision their own).
var DefaultKey = []byte("saferatt-default-attestation-key")

// Config assembles a Server.
type Config struct {
	// Name is the daemon's endpoint name; defaults to "rattd".
	Name string
	// Key is the shared MAC-mode attestation key; defaults to
	// DefaultKey.
	Key []byte
	// Ref is the golden memory image provers are expected to hold.
	Ref []byte
	// BlockSize is the measurement granularity of Ref.
	BlockSize int
	// Shuffled selects permuted traversal orders (SMARM-style).
	Shuffled bool
	// Hash is the measurement hash; defaults to suite.SHA256.
	Hash suite.HashID
	// KeepEpochs sizes the batch verifier's multi-epoch expected-tag
	// cache. ERASMUS self-measurements carry counter-derived nonces, so
	// bundles from a fleet interleave a handful of epochs; defaults
	// to 64.
	KeepEpochs int
	// Lease, when set, supplies challenge nonce-counter epoch leases
	// (normally from a tier Coordinator). It is called off the hot
	// path — once per exhausted window, not per challenge — so a
	// sharded tier stays shared-nothing on every report. Nil means
	// the server self-leases the whole counter space, which is the
	// pre-shard single-daemon behavior bit for bit.
	Lease func() EpochLease
	// Logf, if set, receives per-decision diagnostics.
	Logf func(format string, args ...any)
}

// Counts aggregates the daemon's verification outcomes.
type Counts struct {
	Challenges uint64 // hellos answered with a fresh nonce
	Accepted   uint64 // reports that verified clean
	Rejected   uint64 // reports rejected (tag, nonce, geometry, ...)
	Replays    uint64 // reports rejected as replays specifically
}

// Server is the verifier daemon.
type Server struct {
	cfg Config
	tr  transport.Transport

	mu       sync.Mutex
	batch    *verifier.Batch
	pending  map[string][]byte          // prover -> outstanding challenge nonce
	seen     map[string]map[uint64]bool // prover -> accepted ERASMUS counters
	seedLast map[string]uint64          // prover -> highest accepted SeED counter
	lease    EpochLease                 // current challenge-counter lease
	nonceCtr uint64                     // next counter within the lease
	counts   Counts
}

// Serve binds a new Server to tr under cfg.Name and starts answering.
func Serve(tr transport.Transport, cfg Config) (*Server, error) {
	if len(cfg.Ref) == 0 || cfg.BlockSize <= 0 || len(cfg.Ref)%cfg.BlockSize != 0 {
		return nil, fmt.Errorf("rattd: golden image of %d bytes is not a positive multiple of block size %d",
			len(cfg.Ref), cfg.BlockSize)
	}
	if cfg.Name == "" {
		cfg.Name = "rattd"
	}
	if cfg.Key == nil {
		cfg.Key = DefaultKey
	}
	if cfg.Hash == "" {
		cfg.Hash = suite.SHA256
	}
	if cfg.KeepEpochs == 0 {
		cfg.KeepEpochs = 64
	}
	s := &Server{
		cfg:      cfg,
		tr:       tr,
		batch:    verifier.NewBatch(cfg.Hash, cfg.Ref, cfg.BlockSize),
		pending:  map[string][]byte{},
		seen:     map[string]map[uint64]bool{},
		seedLast: map[string]uint64{},
	}
	s.batch.KeepEpochs = cfg.KeepEpochs
	// Prefer the zero-copy receive path: report fields arrive as views
	// into the transport's receive buffer and are consumed before the
	// handler returns (every retained value below — nonces, counters,
	// prover names — is owned or interned), so ingesting a collection
	// costs no per-report copies. Transports without BindFrames get the
	// owning-Msg path.
	var err error
	if fb, ok := tr.(transport.FrameBinder); ok {
		err = fb.BindFrames(cfg.Name, s.onFrame)
	} else {
		err = tr.Bind(cfg.Name, s.onMsg)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Name returns the daemon's endpoint name.
func (s *Server) Name() string { return s.cfg.Name }

// Close unbinds the daemon from its transport. The transport itself is
// the caller's to close (it may host other endpoints).
func (s *Server) Close() { s.tr.Unbind(s.cfg.Name) }

// Counts returns a snapshot of outcome counters.
func (s *Server) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// BatchStats exposes the amortization counters of the batch verifier.
func (s *Server) BatchStats() verifier.BatchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batch.Stats()
}

// Lease returns the server's current challenge-counter lease (zero
// until the first hello pulls one).
func (s *Server) Lease() EpochLease {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lease
}

// Enrolled counts the distinct provers the server holds freshness
// state for — the "enrollment" that checkpoint/restore preserves, so
// a restarted shard keeps rejecting replays and accepting fresh
// counters without the fleet re-registering.
func (s *Server) Enrolled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.seen)
	for p := range s.seedLast {
		if _, ok := s.seen[p]; !ok {
			n++
		}
	}
	return n
}

// leaseFn pulls the next epoch lease: the configured coordinator
// hook, or a self-lease over the whole counter space when the server
// runs unsharded. Called with s.mu held; the coordinator never calls
// back into a shard, so the nesting cannot deadlock.
func (s *Server) leaseFn() EpochLease {
	if s.cfg.Lease != nil {
		return s.cfg.Lease()
	}
	return EpochLease{Lo: 1, Hi: math.MaxUint64}
}

// onFrame is the zero-copy receive path: report fields are views into
// the transport buffer, consumed entirely inside the handler.
func (s *Server) onFrame(f *transport.Frame) {
	switch f.Kind {
	case transport.KindHello:
		s.handleHello(f.From)
	case transport.KindReport:
		s.handleReport(f.From, f.Reports)
	case transport.KindCollection:
		s.handleCollection(f.From, f.Reports)
	case transport.KindSeedReport:
		s.handleSeed(f.From, f.Reports)
	}
}

// onMsg is the owning-copy receive path for transports without frame
// delivery. Msg carries pointer reports; the handlers take value
// slices, so the bundle is reshaped here (a copy of headers only —
// the byte fields are shared, and the Msg owns them).
func (s *Server) onMsg(m transport.Msg) {
	var reports []core.Report
	if len(m.Reports) > 0 {
		reports = make([]core.Report, 0, len(m.Reports))
		for _, r := range m.Reports {
			if r != nil {
				reports = append(reports, *r)
			}
		}
	}
	switch m.Kind {
	case transport.KindHello:
		s.handleHello(m.From)
	case transport.KindReport:
		s.handleReport(m.From, reports)
	case transport.KindCollection:
		s.handleCollection(m.From, reports)
	case transport.KindSeedReport:
		s.handleSeed(m.From, reports)
	}
}

// handleHello answers a prover's hello with a fresh challenge nonce
// (step 1 of the §2.2 timeline, prover-initiated so it traverses NATs).
// The counter behind the nonce comes out of the server's current
// epoch lease; a fresh lease is pulled only when the window runs dry,
// so in a sharded tier the coordinator is touched once per
// DefaultLeaseWindow challenges, never per request.
func (s *Server) handleHello(from string) {
	s.mu.Lock()
	if s.nonceCtr < s.lease.Lo || s.nonceCtr >= s.lease.Hi {
		s.lease = s.leaseFn()
		s.nonceCtr = s.lease.Lo
	}
	nonce := core.PRF(s.cfg.Key, "rattd-challenge", s.nonceCtr)[:16]
	s.nonceCtr++
	s.pending[from] = nonce
	s.counts.Challenges++
	s.mu.Unlock()
	s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindChallenge, Nonce: nonce})
}

// handleReport validates a challenge response and answers with a
// verdict.
func (s *Server) handleReport(from string, reports []core.Report) {
	s.mu.Lock()
	nonce, outstanding := s.pending[from]
	delete(s.pending, from)
	ok, reason := false, ""
	if !outstanding {
		reason = "unsolicited report"
	} else if len(reports) == 0 {
		reason = "empty report bundle"
	} else {
		ok = true
		for i := range reports {
			r := &reports[i]
			if !hmac.Equal(r.Nonce, nonce) {
				ok, reason = false, "nonce mismatch"
				break
			}
			if ok, reason = s.verifyLocked(r); !ok {
				break
			}
		}
	}
	s.count(ok)
	s.mu.Unlock()
	s.logf("report %s: ok=%v %s", from, ok, reason)
	s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindVerdict, OK: ok, Reason: reason})
}

// handleCollection validates an ERASMUS measurement history: per-report
// tags, counter-bound self-derived nonces, no replayed and no
// non-monotonic counters (§3.3). Each offending report is rejected
// exactly once; the verdict covers the whole bundle.
func (s *Server) handleCollection(from string, reports []core.Report) {
	s.mu.Lock()
	ok, reason := true, ""
	if len(reports) == 0 {
		ok, reason = false, "empty collection"
	}
	seen := s.seen[from]
	if seen == nil {
		seen = map[uint64]bool{}
		s.seen[from] = seen
	}
	var prevCtr uint64
	for i := range reports {
		r := &reports[i]
		rok, rreason := true, ""
		want := core.PRF(s.cfg.Key, "erasmus-nonce", r.Counter)
		switch {
		case !hmac.Equal(r.Nonce, want):
			rok, rreason = false, "self-measurement nonce not bound to counter"
		case seen[r.Counter]:
			rok, rreason = false, "replayed measurement counter"
			s.counts.Replays++
		case i > 0 && r.Counter <= prevCtr:
			rok, rreason = false, "non-monotonic measurement counter"
		default:
			rok, rreason = s.verifyLocked(r)
		}
		if rok {
			seen[r.Counter] = true
		}
		s.count(rok)
		if !rok && ok {
			ok, reason = false, rreason
		}
		prevCtr = r.Counter
	}
	s.mu.Unlock()
	s.logf("collection %s (%d reports): ok=%v %s", from, len(reports), ok, reason)
	s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindVerdict, OK: ok, Reason: reason})
}

// handleSeed ingests unsolicited SeED reports: nonce bound to the
// prover's derived seed and counter, counters strictly monotonic.
// SeED is non-interactive, so no verdict is sent back.
func (s *Server) handleSeed(from string, reports []core.Report) {
	s.mu.Lock()
	seed := SeedFor(s.cfg.Key, from)
	for i := range reports {
		r := &reports[i]
		rok, rreason := true, ""
		want := core.PRF(seed, "seed-nonce", r.Counter)
		switch {
		case !hmac.Equal(r.Nonce, want):
			rok, rreason = false, "SeED nonce not bound to counter"
		case r.Counter <= s.seedLast[from]:
			rok, rreason = false, "replayed SeED report"
			s.counts.Replays++
		default:
			rok, rreason = s.verifyLocked(r)
		}
		if rok {
			s.seedLast[from] = r.Counter
		}
		s.count(rok)
		s.logf("seed-report %s ctr=%d: ok=%v %s", from, r.Counter, rok, rreason)
	}
	s.mu.Unlock()
}

// verifyLocked checks one report's tag through the batch fast path.
// Callers hold s.mu.
func (s *Server) verifyLocked(r *core.Report) (bool, string) {
	if r.RegionCount > 0 || r.Data != nil {
		// Per-device regions and reported data blocks defeat the shared
		// expected tag; the daemon serves uniform fleets.
		return false, "region/data reports are not served by rattd"
	}
	ok, err := s.batch.Verify(s.cfg.Key, r, s.cfg.Shuffled)
	if err != nil {
		return false, "verification error: " + err.Error()
	}
	if !ok {
		return false, "tag mismatch (memory deviates from golden image)"
	}
	return true, ""
}

func (s *Server) count(ok bool) {
	if ok {
		s.counts.Accepted++
	} else {
		s.counts.Rejected++
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// SeedFor derives a prover's SeED schedule seed from the shared key
// and its name; daemon and prover compute it independently.
func SeedFor(key []byte, prover string) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("rattd-seed:"))
	mac.Write([]byte(prover))
	return mac.Sum(nil)
}
