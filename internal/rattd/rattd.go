// Package rattd implements the networked verifier daemon: a
// transport-agnostic attestation service that answers SMART
// challenge/response hellos (§2.2), ingests ERASMUS collection bundles
// and SeED prover-initiated reports (§3.3) for thousands of provers,
// and verifies everything through the amortized verifier.Batch fast
// path against one shared golden image.
//
// The daemon speaks typed transport messages only, so the same Server
// runs over transport.Sim in deterministic tests and over
// transport.Net on real UDP sockets (cmd/rattd). It keeps no
// simulation clock: freshness bookkeeping that needs wall time lives
// with the caller; protocol-level replay protection (nonce binding,
// monotonic counters) is self-contained.
//
// Concurrency model (one shard's insides). The transport delivers
// frames on RecvQueues dispatch workers at once, so the Server is
// built to verify in parallel rather than serialize on a daemon-wide
// mutex: per-prover freshness state (outstanding challenges, ERASMUS
// dedup windows, SeED watermarks) is partitioned across lock stripes
// keyed by prover-name hash, so handlers for different provers never
// contend; all crypto — PRF nonce derivation through pooled MAC
// state, batch tag verification through the read-mostly expected-tag
// cache — runs outside every stripe lock; and outcome counters are
// atomics. A stripe lock is held only for map touches measured in
// nanoseconds, which is what lets a shard's throughput scale with the
// cores the transport already fans out to.
package rattd

import (
	"crypto/hmac"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"saferatt/internal/core"
	"saferatt/internal/suite"
	"saferatt/internal/transport"
	"saferatt/internal/verifier"
)

// DefaultKey is the fleet-shared attestation key devices ship with
// (mirrors the device default; real deployments provision their own).
var DefaultKey = []byte("saferatt-default-attestation-key")

// PRF labels, held as byte slices so hot-path derivations write them
// without a per-call string conversion.
var (
	labelChallenge = []byte("rattd-challenge")
	labelErasmus   = []byte("erasmus-nonce")
	labelSeedNonce = []byte("seed-nonce")
	labelSeedFor   = []byte("rattd-seed:")
)

// DefaultImageName is the registry name a single-image Config's Ref is
// registered under, and the image v1 peers and imageless reports are
// served against.
const DefaultImageName = "default"

// Image-related rejection reasons. ReasonStaleImage is the explicit
// attestation-during-update outcome: a report pinned to a version that
// was rotated out and is past its grace window is rejected with this
// distinct reason — never spuriously passed against either image.
const (
	ReasonStaleImage     = "stale image version (retired past rotation grace)"
	ReasonUnknownImage   = "unknown image id"
	ReasonImageMismatch  = "image binding mismatch"
	ReasonMalformedImage = "malformed image id"
)

// DefaultPendingCap bounds outstanding (unanswered) SMART challenges
// held across the server. A prover that hellos and never reports used
// to leak its nonce entry forever; past the cap the oldest entry is
// evicted — its owner re-initiates on timeout, which is the SMART
// recovery path anyway.
const DefaultPendingCap = 1 << 16

// Config assembles a Server.
type Config struct {
	// Name is the daemon's endpoint name; defaults to "rattd".
	Name string
	// Key is the shared MAC-mode attestation key; defaults to
	// DefaultKey.
	Key []byte
	// Ref is the golden memory image provers are expected to hold.
	// Ignored when Images is set.
	Ref []byte
	// BlockSize is the measurement granularity of Ref.
	BlockSize int
	// Images, when set, serves a heterogeneous fleet: reports verify
	// against the image their wire image id names, provers are bound to
	// an image at enrollment, and live rotation (ImageSet.Rotate)
	// follows the registry's grace semantics. Nil builds a single-image
	// registry from Ref/BlockSize under DefaultImageName — the
	// pre-registry behavior bit for bit.
	Images *verifier.ImageSet
	// Shuffled selects permuted traversal orders (SMARM-style).
	Shuffled bool
	// Hash is the measurement hash; defaults to suite.SHA256.
	Hash suite.HashID
	// KeepEpochs sizes the batch verifier's multi-epoch expected-tag
	// cache. ERASMUS self-measurements carry counter-derived nonces, so
	// bundles from a fleet interleave a handful of epochs; defaults
	// to 64.
	KeepEpochs int
	// Stripes is the number of lock stripes the per-prover freshness
	// state is partitioned across (rounded up to a power of two).
	// Defaults to 4×GOMAXPROCS: enough that concurrent dispatch
	// workers rarely collide, cheap enough to be irrelevant at 1.
	Stripes int
	// PendingCap bounds outstanding SMART challenges across the
	// server (oldest evicted first); defaults to DefaultPendingCap.
	// Negative means 1 (the minimum).
	PendingCap int
	// Lease, when set, supplies challenge nonce-counter epoch leases
	// (normally from a tier Coordinator). It is called off the hot
	// path — once per exhausted window, not per challenge — so a
	// sharded tier stays shared-nothing on every report. Nil means
	// the server self-leases the whole counter space, which is the
	// pre-shard single-daemon behavior bit for bit.
	Lease func() EpochLease
	// Logf, if set, receives per-decision diagnostics.
	Logf func(format string, args ...any)
}

// Counts aggregates the daemon's verification outcomes. The fields
// are maintained as independent atomics; a snapshot taken while
// handlers are running is exact per field but not a single
// linearization point across fields.
type Counts struct {
	Challenges uint64 // hellos answered with a fresh nonce
	Accepted   uint64 // reports that verified clean
	Rejected   uint64 // reports rejected (tag, nonce, geometry, ...)
	Replays    uint64 // reports rejected as replays specifically
}

// Server is the verifier daemon. All handler paths are safe for
// concurrent use: the transport's dispatch workers call straight in.
type Server struct {
	cfg     Config
	tr      transport.Transport
	images  *verifier.ImageSet
	defName string // default image's name (normalized away in bindings)

	stripes []*stripe
	mask    uint64

	// The challenge-counter lease has its own small mutex: hellos
	// touch it for a counter increment (and once per exhausted window
	// for a coordinator round-trip); no report path ever takes it.
	leaseMu  sync.Mutex
	lease    EpochLease
	nonceCtr uint64

	enrolled       atomic.Int64
	dirtyProvers   atomic.Int64  // provers dirtied since the last checkpoint swap
	imageFallbacks atomic.Uint64 // restored bindings to unknown images, remapped to default
	cnt            struct {
		challenges, accepted, rejected, replays atomic.Uint64
	}
}

// stripe owns the freshness state of the provers that hash to it.
// Every map touch happens under mu; nothing slower than a map
// operation ever does.
type stripe struct {
	mu         sync.Mutex
	pending    map[string]pendingChallenge // prover -> outstanding challenge
	order      []pendingRef                // insertion order for oldest-first eviction
	seq        uint64                      // challenge insertion sequence
	pendingCap int
	provers    map[string]*proverRec // prover -> durable freshness record

	// Checkpoint dirty tracking. ckptGen is the current checkpoint
	// generation (starts at 1 so a zero dirtyGen always reads clean);
	// dirty lists the provers stamped with it, in first-touch order.
	// A delta checkpoint swaps both under the stripe lock: it takes
	// the dirty list, bumps the generation, and walks only those
	// records — commits racing the swap land wholly in this delta or
	// wholly in the next one, never in neither.
	ckptGen uint64
	dirty   []string
}

// proverRec is one prover's durable freshness state — exactly what a
// checkpoint persists: the ERASMUS replay window, the SeED watermark,
// and the dirty stamp the delta encoder keys off. One record lives on
// one stripe, so per-prover checkpoint consistency is a single-lock
// property.
type proverRec struct {
	win      DedupWindow // ERASMUS replay window (valid when hasWin)
	seedLast uint64      // highest accepted SeED counter (valid when hasSeed)
	image    string      // bound image name; "" = the fleet default
	hasWin   bool
	hasSeed  bool
	dirtyGen uint64 // stripe ckptGen this record was last dirtied under
}

// markDirty stamps a record into the current checkpoint generation.
// Caller holds st.mu. The common case — a prover reporting again
// between checkpoints — is a compare and nothing else; the first
// touch per generation appends to a slice that keeps its backing
// array across swaps, so the steady state allocates nothing.
func (st *stripe) markDirty(s *Server, name string, rec *proverRec) {
	if rec.dirtyGen != st.ckptGen {
		rec.dirtyGen = st.ckptGen
		st.dirty = append(st.dirty, name)
		s.dirtyProvers.Add(1)
	}
}

// rec returns the prover's freshness record, creating (and counting
// as enrolled) on first contact. Caller holds st.mu.
func (st *stripe) rec(s *Server, name string) *proverRec {
	r := st.provers[name]
	if r == nil {
		r = &proverRec{}
		st.provers[name] = r
		s.enrolled.Add(1)
	}
	return r
}

type pendingChallenge struct {
	nonce []byte
	seq   uint64
}

// pendingRef is one entry of a stripe's eviction FIFO. A re-hello
// supersedes the prover's entry (new seq), leaving the old ref stale;
// stale refs are skipped at eviction and compacted away when they
// outnumber live entries.
type pendingRef struct {
	name string
	seq  uint64
}

// Serve binds a new Server to tr under cfg.Name and starts answering.
func Serve(tr transport.Transport, cfg Config) (*Server, error) {
	if cfg.Images == nil && (len(cfg.Ref) == 0 || cfg.BlockSize <= 0 || len(cfg.Ref)%cfg.BlockSize != 0) {
		return nil, fmt.Errorf("rattd: golden image of %d bytes is not a positive multiple of block size %d",
			len(cfg.Ref), cfg.BlockSize)
	}
	if cfg.Images != nil && cfg.Images.Default().Name == "" {
		return nil, fmt.Errorf("rattd: image registry holds no default image")
	}
	if cfg.Name == "" {
		cfg.Name = "rattd"
	}
	if cfg.Key == nil {
		cfg.Key = DefaultKey
	}
	if cfg.Hash == "" {
		cfg.Hash = suite.SHA256
	}
	if cfg.KeepEpochs == 0 {
		cfg.KeepEpochs = 64
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.PendingCap == 0 {
		cfg.PendingCap = DefaultPendingCap
	}
	nstripes := 1 << bits.Len(uint(cfg.Stripes-1)) // next power of two
	perStripeCap := cfg.PendingCap / nstripes
	if perStripeCap < 1 {
		perStripeCap = 1
	}
	images := cfg.Images
	if images == nil {
		// Single-image fleet: the Ref becomes a one-entry registry, so
		// the verify path is uniform and a later Rotate works on any
		// server.
		images = verifier.NewImageSet(verifier.ImageSetConfig{Hash: cfg.Hash, KeepEpochs: cfg.KeepEpochs})
		if _, err := images.Add(DefaultImageName, verifier.ImageOf(cfg.Ref, cfg.BlockSize)); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:     cfg,
		tr:      tr,
		images:  images,
		defName: images.Default().Name,
		stripes: make([]*stripe, nstripes),
		mask:    uint64(nstripes - 1),
	}
	for i := range s.stripes {
		s.stripes[i] = &stripe{
			pending:    map[string]pendingChallenge{},
			pendingCap: perStripeCap,
			provers:    map[string]*proverRec{},
			ckptGen:    1,
		}
	}
	// Prefer the zero-copy receive path: report fields arrive as views
	// into the transport's receive buffer and are consumed before the
	// handler returns (every retained value below — nonces, counters,
	// prover names — is owned or interned), so ingesting a collection
	// costs no per-report copies. Transports without BindFrames get the
	// owning-Msg path.
	var err error
	if fb, ok := tr.(transport.FrameBinder); ok {
		err = fb.BindFrames(cfg.Name, s.onFrame)
	} else {
		err = tr.Bind(cfg.Name, s.onMsg)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Name returns the daemon's endpoint name.
func (s *Server) Name() string { return s.cfg.Name }

// Close unbinds the daemon from its transport. The transport itself is
// the caller's to close (it may host other endpoints).
func (s *Server) Close() { s.tr.Unbind(s.cfg.Name) }

// Stripes returns the server's stripe count (diagnostics).
func (s *Server) Stripes() int { return len(s.stripes) }

// Counts returns a snapshot of outcome counters.
func (s *Server) Counts() Counts {
	return Counts{
		Challenges: s.cnt.challenges.Load(),
		Accepted:   s.cnt.accepted.Load(),
		Rejected:   s.cnt.rejected.Load(),
		Replays:    s.cnt.replays.Load(),
	}
}

// BatchStats exposes the amortization counters summed across every
// image's batch verifier.
func (s *Server) BatchStats() verifier.BatchStats { return s.images.Stats().Batch }

// Images returns the server's image registry — the handle operators
// use for live golden rotation (Rotate / AdvanceEpoch) while the
// server keeps serving.
func (s *Server) Images() *verifier.ImageSet { return s.images }

// ImageFallbacks counts restored prover bindings that named an image
// unknown to this server's registry and were remapped to the default.
func (s *Server) ImageFallbacks() uint64 { return s.imageFallbacks.Load() }

// Lease returns the server's current challenge-counter lease (zero
// until the first hello pulls one).
func (s *Server) Lease() EpochLease {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	return s.lease
}

// Enrolled counts the distinct provers the server holds freshness
// state for — the "enrollment" that checkpoint/restore preserves, so
// a restarted shard keeps rejecting replays and accepting fresh
// counters without the fleet re-registering. Maintained as a counter
// at insert time (it is read per stats tick; scanning every stripe's
// tables there would serialize against the ingest path).
func (s *Server) Enrolled() int { return int(s.enrolled.Load()) }

// DirtyCount is the number of provers whose freshness state changed
// since the last checkpoint swap — what the next delta checkpoint
// would have to write. Maintained as an atomic at dirty-stamp time,
// so the background checkpointer's skip-when-clean probe costs one
// load, never a stripe scan.
func (s *Server) DirtyCount() int64 { return s.dirtyProvers.Load() }

// leaseState snapshots the challenge-counter lease and its cursor
// (checkpoint header fields).
func (s *Server) leaseState() (EpochLease, uint64) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	return s.lease, s.nonceCtr
}

// stripeFor picks the lock stripe owning a prover's freshness state.
// The name hash is mixed through splitmix64 so provers that rendezvous
// onto one shard still spread across its stripes.
func (s *Server) stripeFor(name string) *stripe {
	return s.stripes[mix64(fnv64a(name))&s.mask]
}

// leaseFn pulls the next epoch lease: the configured coordinator
// hook, or a self-lease over the whole counter space when the server
// runs unsharded. Called with leaseMu held; the coordinator never
// calls back into a shard, so the nesting cannot deadlock.
func (s *Server) leaseFn() EpochLease {
	if s.cfg.Lease != nil {
		return s.cfg.Lease()
	}
	return EpochLease{Lo: 1, Hi: math.MaxUint64}
}

// nextChallengeCtr allocates one challenge counter out of the lease,
// pulling a fresh lease when the window runs dry — in a sharded tier
// the coordinator is touched once per DefaultLeaseWindow challenges,
// never per request.
func (s *Server) nextChallengeCtr() uint64 {
	s.leaseMu.Lock()
	if s.nonceCtr < s.lease.Lo || s.nonceCtr >= s.lease.Hi {
		s.lease = s.leaseFn()
		s.nonceCtr = s.lease.Lo
	}
	c := s.nonceCtr
	s.nonceCtr++
	s.leaseMu.Unlock()
	return c
}

// onFrame is the zero-copy receive path: report fields are views into
// the transport buffer, consumed entirely inside the handler. The
// frame's image id is interned, so threading it through costs nothing.
func (s *Server) onFrame(f *transport.Frame) {
	s.IngestImage(f.From, f.Kind, f.Image, f.Reports)
}

// onMsg is the owning-copy receive path for transports without frame
// delivery. Msg carries pointer reports; the handlers take value
// slices, so the bundle is reshaped here (a copy of headers only —
// the byte fields are shared, and the Msg owns them).
func (s *Server) onMsg(m transport.Msg) {
	var reports []core.Report
	if len(m.Reports) > 0 {
		reports = make([]core.Report, 0, len(m.Reports))
		for _, r := range m.Reports {
			if r != nil {
				reports = append(reports, *r)
			}
		}
	}
	s.IngestImage(m.From, m.Kind, m.Image, reports)
}

// Ingest delivers one bundle to the server exactly as if it had
// arrived on the transport — the in-process embedding path used by
// benchmarks and the million-prover scale experiment (E15): no codec,
// no socket, the handler runs synchronously on the caller's
// goroutine. Safe for concurrent use from any number of goroutines.
// Report-less kinds (KindHello) take nil reports; replies (challenge,
// verdict) go out through the server's transport as usual. The bundle
// carries no image id, so it verifies against the prover's bound
// image (the fleet default until a named contact binds one).
func (s *Server) Ingest(from string, kind transport.Kind, reports []core.Report) {
	s.IngestImage(from, kind, "", reports)
}

// IngestImage is Ingest with the wire image id ("name" or "name@vN")
// the bundle arrived under — what the frame paths feed. An empty id
// resolves to the prover's bound image; a named id must match the
// binding (first named contact binds); an exact version follows the
// registry's rotation semantics (in-grace retired versions verify,
// stale ones reject with ReasonStaleImage).
func (s *Server) IngestImage(from string, kind transport.Kind, image string, reports []core.Report) {
	id, err := verifier.ParseImageID(image)
	if err != nil {
		s.rejectBundle(from, kind, len(reports), ReasonMalformedImage)
		return
	}
	switch kind {
	case transport.KindHello:
		s.handleHello(from)
	case transport.KindReport:
		s.handleReport(from, id, reports)
	case transport.KindCollection:
		s.handleCollection(from, id, reports)
	case transport.KindSeedReport:
		s.handleSeed(from, id, reports)
	}
}

// rejectBundle counts one rejection per report (conserving the
// accepted+rejected == reports invariant) and answers the verdict the
// kind calls for.
func (s *Server) rejectBundle(from string, kind transport.Kind, n int, reason string) {
	for i := 0; i < n; i++ {
		s.count(false)
	}
	if s.cfg.Logf != nil {
		s.logf("bundle %s (%d reports): rejected: %s", from, n, reason)
	}
	switch kind {
	case transport.KindReport, transport.KindCollection:
		s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindVerdict, OK: false, Reason: reason})
	}
}

// bindImage resolves a bundle's image name against the prover's
// stored binding: the first named contact binds (enrollment-time
// assignment in a fleet whose provers always present their class),
// later bundles may omit the name, and a conflicting name rejects.
// The default image's own name normalizes to "" so homogeneous fleets
// store no binding at all. When create is false a missing record
// leaves the binding unstored — the SMART report path does not enroll.
// Returns the effective name and false on a binding mismatch.
func (s *Server) bindImage(st *stripe, from, name string, create bool) (string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec := st.provers[from]
	bound := ""
	if rec != nil {
		bound = rec.image
	}
	switch {
	case name == "":
		return bound, true
	case name == s.defName:
		// An explicit claim of the default image is never stored (the
		// default binding IS the empty string) but still conflicts with
		// a binding to any other image.
		if bound != "" {
			return "", false
		}
		return "", true
	case bound == name:
		return name, true
	case bound != "":
		return "", false
	}
	// First named contact binds.
	if rec == nil {
		if !create {
			return name, true
		}
		rec = st.rec(s, from)
	}
	rec.image = name
	st.markDirty(s, from, rec)
	return name, true
}

// handleHello answers a prover's hello with a fresh challenge nonce
// (step 1 of the §2.2 timeline, prover-initiated so it traverses
// NATs). The counter comes out of the epoch lease, the nonce is
// derived off-lock, and only the pending-table insert touches the
// prover's stripe.
func (s *Server) handleHello(from string) {
	ctr := s.nextChallengeCtr()
	nonce := core.AppendPRF(make([]byte, 0, 32), s.cfg.Key, labelChallenge, ctr)[:16]
	st := s.stripeFor(from)
	st.mu.Lock()
	st.putPending(from, nonce)
	st.mu.Unlock()
	s.cnt.challenges.Add(1)
	s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindChallenge, Nonce: nonce})
}

// putPending inserts an outstanding challenge, evicting oldest-first
// past the stripe's share of PendingCap. Caller holds st.mu.
func (st *stripe) putPending(name string, nonce []byte) {
	st.seq++
	st.pending[name] = pendingChallenge{nonce: nonce, seq: st.seq}
	st.order = append(st.order, pendingRef{name: name, seq: st.seq})
	for len(st.pending) > st.pendingCap {
		ref := st.order[0]
		st.order = st.order[1:]
		if p, ok := st.pending[ref.name]; ok && p.seq == ref.seq {
			delete(st.pending, ref.name)
		}
	}
	// Re-hellos leave stale refs behind; compact when they dominate so
	// the FIFO stays O(live entries) even under a re-hello storm.
	if len(st.order) > 2*st.pendingCap && len(st.order) > 2*len(st.pending) {
		live := st.order[:0]
		for _, ref := range st.order {
			if p, ok := st.pending[ref.name]; ok && p.seq == ref.seq {
				live = append(live, ref)
			}
		}
		st.order = live
	}
}

// takePending consumes a prover's outstanding challenge.
func (st *stripe) takePending(name string) ([]byte, bool) {
	st.mu.Lock()
	p, ok := st.pending[name]
	if ok {
		delete(st.pending, name)
	}
	st.mu.Unlock()
	return p.nonce, ok
}

// handleReport validates a challenge response and answers with a
// verdict. The pending lookup and binding check are the only stripe
// touches; nonce comparison and tag verification run off-lock.
func (s *Server) handleReport(from string, id verifier.ImageID, reports []core.Report) {
	st := s.stripeFor(from)
	name, bound := s.bindImage(st, from, id.Name, false)
	nonce, outstanding := st.takePending(from)
	ok, reason := false, ""
	if !bound {
		reason = ReasonImageMismatch
	} else if !outstanding {
		reason = "unsolicited report"
	} else if len(reports) == 0 {
		reason = "empty report bundle"
	} else {
		eff := verifier.ImageID{Name: name, Version: id.Version}
		ok = true
		for i := range reports {
			r := &reports[i]
			if !hmac.Equal(r.Nonce, nonce) {
				ok, reason = false, "nonce mismatch"
				break
			}
			if ok, reason = s.verify(r, eff); !ok {
				break
			}
		}
	}
	s.count(ok)
	if s.cfg.Logf != nil {
		s.logf("report %s: ok=%v %s", from, ok, reason)
	}
	s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindVerdict, OK: ok, Reason: reason})
}

// ingestScratch holds the reusable derivation buffers of one bundle's
// ingest: pooled so the steady-state verify path allocates nothing.
type ingestScratch struct {
	nonce []byte // PRF output
	seed  []byte // derived SeED schedule seed
	name  []byte // prover name bytes (string→[]byte staging)
}

var scratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// handleCollection validates an ERASMUS measurement history: per-report
// tags, counter-bound self-derived nonces, no replayed and no
// non-monotonic counters (§3.3). Each offending report is rejected
// exactly once; the verdict covers the whole bundle. Replay state is
// the prover's bounded DedupWindow: the stripe lock is taken for the
// window probe and (after an off-lock tag verification) the commit,
// which re-checks the window so two racing bundles for one prover
// cannot double-accept a counter.
func (s *Server) handleCollection(from string, id verifier.ImageID, reports []core.Report) {
	st := s.stripeFor(from)
	// Binding before enrollment bookkeeping: a mismatched image claim
	// rejects the whole bundle (every report counted) before any
	// window state moves.
	name, bound := s.bindImage(st, from, id.Name, true)
	if !bound {
		s.rejectBundle(from, transport.KindCollection, len(reports), ReasonImageMismatch)
		return
	}
	eff := verifier.ImageID{Name: name, Version: id.Version}
	ok, reason := true, ""
	if len(reports) == 0 {
		ok, reason = false, "empty collection"
	}
	// Enrollment: the prover gets its window on first contact, so a
	// restarted shard's checkpoint covers provers whose every report
	// was rejected too (they are enrolled, just never clean). The
	// record pointer is stable (heap value behind the stripe map), so
	// the window can be probed under later lock acquisitions.
	st.mu.Lock()
	rec := st.rec(s, from)
	w := &rec.win
	if !rec.hasWin {
		rec.hasWin = true
		st.markDirty(s, from, rec)
	}
	st.mu.Unlock()

	sc := scratchPool.Get().(*ingestScratch)
	var prevCtr uint64
	for i := range reports {
		r := &reports[i]
		rok, rreason := true, ""
		replay := false
		sc.nonce = core.AppendPRF(sc.nonce[:0], s.cfg.Key, labelErasmus, r.Counter)
		st.mu.Lock()
		seen := w.Seen(r.Counter)
		st.mu.Unlock()
		switch {
		case !hmac.Equal(r.Nonce, sc.nonce):
			rok, rreason = false, "self-measurement nonce not bound to counter"
		case seen:
			rok, rreason, replay = false, "replayed measurement counter", true
		case i > 0 && r.Counter <= prevCtr:
			rok, rreason = false, "non-monotonic measurement counter"
		default:
			if rok, rreason = s.verify(r, eff); rok {
				st.mu.Lock()
				if !w.Add(r.Counter) { // lost a same-counter race
					rok, rreason, replay = false, "replayed measurement counter", true
				} else {
					st.markDirty(s, from, rec)
				}
				st.mu.Unlock()
			}
		}
		if replay {
			s.cnt.replays.Add(1)
		}
		s.count(rok)
		if !rok && ok {
			ok, reason = false, rreason
		}
		prevCtr = r.Counter
	}
	scratchPool.Put(sc)
	if s.cfg.Logf != nil { // guarded: the variadic boxing allocates
		s.logf("collection %s (%d reports): ok=%v %s", from, len(reports), ok, reason)
	}
	s.tr.Send(transport.Msg{From: s.cfg.Name, To: from, Kind: transport.KindVerdict, OK: ok, Reason: reason})
}

// handleSeed ingests unsolicited SeED reports: nonce bound to the
// prover's derived seed and counter, counters strictly monotonic
// above a per-prover watermark. SeED is non-interactive, so no
// verdict is sent back. Seed derivation and verification run
// off-lock; the watermark commit re-checks under the stripe lock.
func (s *Server) handleSeed(from string, id verifier.ImageID, reports []core.Report) {
	st := s.stripeFor(from)
	// SeED bundles enroll on first accepted report (see the commit
	// below), so the binding pass must not create the record; a first
	// named contact that never verifies clean still binds nothing.
	name, bound := s.bindImage(st, from, id.Name, false)
	if !bound {
		s.rejectBundle(from, transport.KindSeedReport, len(reports), ReasonImageMismatch)
		return
	}
	eff := verifier.ImageID{Name: name, Version: id.Version}
	sc := scratchPool.Get().(*ingestScratch)
	sc.name = append(sc.name[:0], from...)
	var err error
	if sc.seed, err = suite.AppendMAC(sc.seed[:0], suite.SHA256, s.cfg.Key, labelSeedFor, sc.name); err != nil {
		scratchPool.Put(sc)
		return
	}
	for i := range reports {
		r := &reports[i]
		rok, rreason := true, ""
		replay := false
		sc.nonce = core.AppendPRF(sc.nonce[:0], sc.seed, labelSeedNonce, r.Counter)
		st.mu.Lock()
		var last uint64
		if rec := st.provers[from]; rec != nil && rec.hasSeed {
			last = rec.seedLast
		}
		st.mu.Unlock()
		switch {
		case !hmac.Equal(r.Nonce, sc.nonce):
			rok, rreason = false, "SeED nonce not bound to counter"
		case r.Counter <= last:
			rok, rreason, replay = false, "replayed SeED report", true
		default:
			if rok, rreason = s.verify(r, eff); rok {
				st.mu.Lock()
				rec := st.provers[from]
				if rec != nil && rec.hasSeed && r.Counter <= rec.seedLast {
					// lost a race since the pre-check
					rok, rreason, replay = false, "replayed SeED report", true
				} else {
					if rec == nil {
						rec = st.rec(s, from) // first contact: enrolls
					}
					if rec.image == "" && name != "" {
						rec.image = name // enrollment-time binding
					}
					rec.hasSeed = true
					rec.seedLast = r.Counter
					st.markDirty(s, from, rec)
				}
				st.mu.Unlock()
			}
		}
		if replay {
			s.cnt.replays.Add(1)
		}
		s.count(rok)
		if s.cfg.Logf != nil {
			s.logf("seed-report %s ctr=%d: ok=%v %s", from, r.Counter, rok, rreason)
		}
	}
	scratchPool.Put(sc)
}

// verify checks one report's tag through the registry's batch fast
// path under the given image id. Runs under no lock: the registry
// table and every batch's expected-tag cache are read-mostly
// concurrent. Image-policy failures map to their distinct reasons —
// a stale-but-in-grace version verifies against the pinned
// predecessor, a stale-past-grace version is ReasonStaleImage, never
// a spurious pass.
func (s *Server) verify(r *core.Report, id verifier.ImageID) (bool, string) {
	if r.RegionCount > 0 || r.Data != nil {
		// Per-device regions and reported data blocks defeat the shared
		// expected tag; the daemon serves uniform fleets.
		return false, "region/data reports are not served by rattd"
	}
	ok, err := s.images.Verify(s.cfg.Key, id, r, s.cfg.Shuffled)
	if err != nil {
		switch {
		case errors.Is(err, verifier.ErrStaleImage):
			return false, ReasonStaleImage
		case errors.Is(err, verifier.ErrUnknownImage):
			return false, ReasonUnknownImage
		}
		return false, "verification error: " + err.Error()
	}
	if !ok {
		return false, "tag mismatch (memory deviates from golden image)"
	}
	return true, ""
}

func (s *Server) count(ok bool) {
	if ok {
		s.cnt.accepted.Add(1)
	} else {
		s.cnt.rejected.Add(1)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// SeedFor derives a prover's SeED schedule seed from the shared key
// and its name; daemon and prover compute it independently.
func SeedFor(key []byte, prover string) []byte {
	out, err := suite.AppendMAC(nil, suite.SHA256, key, labelSeedFor, []byte(prover))
	if err != nil {
		panic(err) // SHA-256 is always registered
	}
	return out
}
