package rattd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"saferatt/internal/core"
	"saferatt/internal/transport"
	"saferatt/internal/verifier"
)

// BenchmarkServer_VerifySteady prices the steady-state ERASMUS verify
// path — fleet provers reporting the current counter, expected tag
// already cached: one PRF, one window probe, one MAC compare, one
// window commit. The CI gate asserts 0 allocs/op here.
func BenchmarkServer_VerifySteady(b *testing.B) {
	const fleet = 4096
	s := localServer(b, Config{Stripes: 8})
	image := GoldenImage(7, testMem, testBlock)

	names := make([]string, fleet)
	base := make([]core.Report, fleet) // counter-1 report per prover
	for i := 0; i < fleet; i++ {
		p, err := NewProver(fmt.Sprintf("prv%05d", i), DefaultKey, image, testBlock)
		if err != nil {
			b.Fatal(err)
		}
		names[i] = p.Name
		base[i] = selfMeasure(b, p, 1)
	}
	// The fleet shares one key, so every prover's report for a given
	// counter is byte-identical except replay state: enroll everyone at
	// counter 1, then bump each measured report's counter past anything
	// seen so every iteration takes the accept path.
	for i := range names {
		s.Ingest(names[i], transport.KindCollection, base[i:i+1])
	}
	reports := make(map[uint64][]core.Report) // counter -> one-report bundle
	bundleFor := func(ctr uint64) []core.Report {
		if r, ok := reports[ctr]; ok {
			return r
		}
		p, err := NewProver("tmpl", DefaultKey, image, testBlock)
		if err != nil {
			b.Fatal(err)
		}
		r := []core.Report{selfMeasure(b, p, ctr)}
		reports[ctr] = r
		return r
	}
	for ctr := uint64(2); ctr < 2+uint64((b.N+len(names)-1)/len(names))+1; ctr++ {
		bundleFor(ctr) // pre-build outside the timed loop
	}

	b.ReportAllocs()
	b.ResetTimer()
	ctr, idx := uint64(2), 0
	for i := 0; i < b.N; i++ {
		s.Ingest(names[idx], transport.KindCollection, reports[ctr])
		idx++
		if idx == len(names) {
			idx, ctr = 0, ctr+1
		}
	}
	b.StopTimer()
	if c := s.Counts(); c.Rejected != 0 {
		b.Fatalf("steady-state bench rejected %d reports", c.Rejected)
	}
}

// BenchmarkServer_ConcurrentIngest measures intra-shard scaling: G
// concurrent ingest goroutines (the shape transport dispatch workers
// produce) over a shared server, striped versus serialized — the
// "serialized" arm funnels the identical workload through one global
// mutex, reproducing the old single-lock daemon. Run with -cpu 1,2,4
// on a multi-core host; the ratio striped/serialized at -cpu 4 is the
// headline number. On a single-core host the two arms converge (no
// parallelism to reclaim) and TestStripesDoNotShareLocks carries the
// structural claim instead.
func BenchmarkServer_ConcurrentIngest(b *testing.B) {
	const fleet = 1024
	image := GoldenImage(7, testMem, testBlock)
	build := func(b *testing.B) (*Server, []string, [][]core.Report) {
		s := localServer(b, Config{Stripes: 0}) // default: 4×GOMAXPROCS
		names := make([]string, fleet)
		warm := make([][]core.Report, fleet)
		for i := 0; i < fleet; i++ {
			p, err := NewProver(fmt.Sprintf("prv%05d", i), DefaultKey, image, testBlock)
			if err != nil {
				b.Fatal(err)
			}
			names[i] = p.Name
			warm[i] = []core.Report{selfMeasure(b, p, 1)}
			s.Ingest(names[i], transport.KindCollection, warm[i])
		}
		// Per-counter template bundles, shared fleet-wide (same key ⇒
		// identical reports); enough counters that the bench never
		// replays.
		bundles := make([][]core.Report, 0, 64)
		p, err := NewProver("tmpl", DefaultKey, image, testBlock)
		if err != nil {
			b.Fatal(err)
		}
		for ctr := uint64(2); ctr < 2+64; ctr++ {
			bundles = append(bundles, []core.Report{selfMeasure(b, p, ctr)})
		}
		return s, names, bundles
	}
	run := func(b *testing.B, lock *sync.Mutex) {
		s, names, bundles := build(b)
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := next.Add(1) - 1
				name := names[n%fleet]
				bundle := bundles[(n/fleet)%uint64(len(bundles))]
				if lock != nil {
					lock.Lock()
				}
				s.Ingest(name, transport.KindCollection, bundle)
				if lock != nil {
					lock.Unlock()
				}
			}
		})
	}
	b.Run("striped", func(b *testing.B) { run(b, nil) })
	b.Run("serialized", func(b *testing.B) { run(b, new(sync.Mutex)) })
}

// BenchmarkServer_VerifySteadyMultiImage prices the same steady-state
// accept path through a four-class image registry: every bundle
// arrives under its class's wire image id, so each ingest parses the
// id, checks the binding and resolves the named image before the
// batch-cached verify. The CI gate pins this at 0 allocs/op and
// within 1.15x of BenchmarkServer_VerifySteady.
func BenchmarkServer_VerifySteadyMultiImage(b *testing.B) {
	const fleet = 4096
	classes := []string{"sensor", "actuator", "gateway", "camera"}
	set := verifier.NewImageSet(verifier.ImageSetConfig{KeepEpochs: 64})
	images := make([][]byte, len(classes))
	for c, name := range classes {
		images[c] = GoldenImage(uint64(7+c), testMem, testBlock)
		if _, err := set.Add(name, verifier.ImageOf(images[c], testBlock)); err != nil {
			b.Fatal(err)
		}
	}
	s, err := Serve(transport.NewLocal(), Config{Images: set, Stripes: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)

	names := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		c := i % len(classes)
		p, err := NewProver(fmt.Sprintf("prv%05d", i), DefaultKey, images[c], testBlock)
		if err != nil {
			b.Fatal(err)
		}
		names[i] = p.Name
		s.IngestImage(p.Name, transport.KindCollection, classes[c],
			[]core.Report{selfMeasure(b, p, 1)})
	}
	// Per-class per-counter template bundles (shared key ⇒ identical
	// same-class reports), pre-built outside the timed loop.
	rounds := uint64((b.N+fleet-1)/fleet) + 2
	bundles := make([][][]core.Report, len(classes)) // class -> counter -> bundle
	for c := range classes {
		p, err := NewProver("tmpl", DefaultKey, images[c], testBlock)
		if err != nil {
			b.Fatal(err)
		}
		for ctr := uint64(2); ctr < 2+rounds; ctr++ {
			bundles[c] = append(bundles[c], []core.Report{selfMeasure(b, p, ctr)})
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	round, idx := 0, 0
	for i := 0; i < b.N; i++ {
		c := idx % len(classes)
		s.IngestImage(names[idx], transport.KindCollection, classes[c], bundles[c][round])
		idx++
		if idx == fleet {
			idx, round = 0, round+1
		}
	}
	b.StopTimer()
	if c := s.Counts(); c.Rejected != 0 {
		b.Fatalf("multi-image steady-state bench rejected %d reports", c.Rejected)
	}
}
