package rattd

import (
	"fmt"
	"testing"
	"time"

	"saferatt/internal/core"
	"saferatt/internal/mem"
	"saferatt/internal/transport"
	"saferatt/internal/verifier"
)

// multiImageServer builds a Server over a two-class registry:
// "sensor" (the default) and "gateway", both golden-backed so rotation
// exercises the derived digest-cache path.
func multiImageServer(t testing.TB, grace uint64) (*Server, *mem.Golden, *mem.Golden) {
	t.Helper()
	sensor := mem.NewGolden(GoldenImage(7, testMem, testBlock), testBlock, 1)
	gateway := mem.NewGolden(GoldenImage(8, testMem, testBlock), testBlock, 1)
	set := verifier.NewImageSet(verifier.ImageSetConfig{Grace: grace})
	if _, err := set.Add("sensor", verifier.ImageOfGolden(sensor)); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Add("gateway", verifier.ImageOfGolden(gateway)); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(transport.NewLocal(), Config{Images: set})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, sensor, gateway
}

func imageProver(t testing.TB, name string, g *mem.Golden, imageName string) *Prover {
	t.Helper()
	p, err := NewProver(name, DefaultKey, g.Bytes(), testBlock)
	if err != nil {
		t.Fatal(err)
	}
	p.ImageName = imageName
	return p
}

// collect ships one self-measurement collection for counters
// [from, to] under the given wire image id.
func collect(t testing.TB, s *Server, p *Prover, image string, from, to uint64) {
	t.Helper()
	var reports []core.Report
	for c := from; c <= to; c++ {
		reports = append(reports, selfMeasure(t, p, c))
	}
	s.IngestImage(p.Name, transport.KindCollection, image, reports)
}

func TestMultiImageVerification(t *testing.T) {
	s, sensor, gateway := multiImageServer(t, 1)
	ps := imageProver(t, "sns-0", sensor, "sensor")
	pg := imageProver(t, "gtw-0", gateway, "gateway")

	collect(t, s, ps, "sensor", 1, 3)
	collect(t, s, pg, "gateway", 1, 3)
	c := s.Counts()
	if c.Accepted != 6 || c.Rejected != 0 {
		t.Fatalf("heterogeneous accept: %+v", c)
	}
	// The default image serves imageless bundles: a sensor-class prover
	// that never names its image still verifies.
	p2 := imageProver(t, "sns-1", sensor, "")
	collect(t, s, p2, "", 1, 2)
	if c := s.Counts(); c.Accepted != 8 {
		t.Fatalf("default-image accept: %+v", c)
	}
	// A gateway-class prover that omits its image verifies against the
	// default and fails: wrong image, never a spurious pass.
	p3 := imageProver(t, "gtw-1", gateway, "")
	collect(t, s, p3, "", 1, 2)
	if c := s.Counts(); c.Accepted != 8 || c.Rejected != 2 {
		t.Fatalf("cross-image reject: %+v", c)
	}
}

func TestImageBindingMismatch(t *testing.T) {
	s, _, gateway := multiImageServer(t, 1)
	p := imageProver(t, "gtw-0", gateway, "gateway")
	collect(t, s, p, "gateway", 1, 2) // binds gateway
	if c := s.Counts(); c.Accepted != 2 {
		t.Fatalf("bind: %+v", c)
	}
	// A later bundle claiming a different image rejects wholesale —
	// every report counted exactly once — without moving window state.
	collect(t, s, p, "sensor", 3, 5)
	c := s.Counts()
	if c.Accepted != 2 || c.Rejected != 3 {
		t.Fatalf("mismatch reject: %+v", c)
	}
	// The binding survives: the same counters under the right name (or
	// no name at all — the binding fills it in) are still fresh.
	collect(t, s, p, "", 3, 5)
	if c := s.Counts(); c.Accepted != 5 || c.Rejected != 3 {
		t.Fatalf("post-mismatch accept: %+v", c)
	}
	// Malformed image ids reject per report too.
	collect(t, s, p, "gateway@vx", 6, 6)
	if c := s.Counts(); c.Rejected != 4 {
		t.Fatalf("malformed id: %+v", c)
	}
}

// TestRotationGraceWindow pins the attestation-during-update story:
// a report pinned to the retired version verifies inside the grace
// window, rejects with a distinct stale-image outcome past it, and a
// mid-update device matching neither version rejects exactly once per
// report with replays deduplicated exactly-once.
func TestRotationGraceWindow(t *testing.T) {
	s, sensor, _ := multiImageServer(t, 1)

	// The OTA: one block of the sensor image changes.
	v2bytes := append([]byte(nil), sensor.Bytes()...)
	copy(v2bytes[2*testBlock:3*testBlock], make([]byte, testBlock))
	v2 := mem.NewGolden(v2bytes, testBlock, 1)
	if d := v2.DiffBlocks(sensor); len(d) != 1 || d[0] != 2 {
		t.Fatalf("diff = %v", d)
	}

	old := imageProver(t, "sns-old", sensor, "sensor@v1")
	fresh := imageProver(t, "sns-new", v2, "sensor@v2")

	id, err := s.Images().Rotate("sensor", verifier.ImageOfGolden(v2))
	if err != nil {
		t.Fatal(err)
	}
	if id.Version != 2 {
		t.Fatalf("rotated to %v", id)
	}

	// Inside grace: the not-yet-updated device keeps verifying against
	// the pinned predecessor; the updated device against the current.
	collect(t, s, old, "sensor@v1", 1, 2)
	collect(t, s, fresh, "sensor@v2", 1, 2)
	if c := s.Counts(); c.Accepted != 4 || c.Rejected != 0 {
		t.Fatalf("in-grace: %+v", c)
	}

	// A mid-update device: the block the OTA touches is half-flashed,
	// so its memory matches neither version. Both claims reject — once
	// per report, never a spurious pass.
	midBytes := append([]byte(nil), sensor.Bytes()...)
	copy(midBytes[2*testBlock:2*testBlock+testBlock/2], make([]byte, testBlock/2))
	mid, err := NewProver("sns-mid", DefaultKey, midBytes, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	midRep := []core.Report{selfMeasure(t, mid, 1)}
	s.IngestImage(mid.Name, transport.KindCollection, "sensor@v1", midRep)
	s.IngestImage(mid.Name, transport.KindCollection, "sensor@v2", append([]core.Report(nil), midRep...))
	c := s.Counts()
	if c.Accepted != 4 || c.Rejected != 2 {
		t.Fatalf("mid-update reject: %+v", c)
	}
	if c.Replays != 0 {
		t.Fatalf("rejected mid-update reports consumed counters: %+v", c)
	}
	// After the device finishes flashing, the same counter is still
	// fresh (a rejected report never consumes it) — and a re-send after
	// acceptance replays exactly once.
	done, err := NewProver("sns-mid", DefaultKey, v2bytes, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	doneRep := []core.Report{selfMeasure(t, done, 1)}
	s.IngestImage(done.Name, transport.KindCollection, "sensor@v2", doneRep)
	s.IngestImage(done.Name, transport.KindCollection, "sensor@v2", append([]core.Report(nil), doneRep...))
	c = s.Counts()
	if c.Accepted != 5 || c.Replays != 1 {
		t.Fatalf("post-update replay: %+v", c)
	}

	// Past grace: the retired version is a distinct stale-image reject.
	s.Images().AdvanceEpoch() // epoch 1 (retired pinned at 1, in grace)
	s.Images().AdvanceEpoch() // epoch 2 (edge of grace)
	s.Images().AdvanceEpoch() // epoch 3 (> retired+grace)
	collect(t, s, old, "sensor@v1", 3, 3)
	c = s.Counts()
	if c.Accepted != 5 || c.Rejected != 4 {
		t.Fatalf("stale reject: %+v", c)
	}
	if st := s.Images().Stats(); st.StaleProbes != 1 {
		t.Fatalf("stale probes = %d", st.StaleProbes)
	}
	// And the rotation seeded the new version's digest cache instead of
	// re-hashing the whole image (checked structurally in the verifier
	// tests; here just confirm the registry pruned the retired entry).
	if st := s.Images().Stats(); st.Images != 2 {
		t.Fatalf("registry holds %d entries after prune", st.Images)
	}
}

// TestRotationVerdictReasons drives the stale/mismatch paths over a
// real transport and asserts the distinct verdict reasons.
func TestRotationVerdictReasons(t *testing.T) {
	w := simDaemonWorld(t)
	defer w.close()
	// Rebuild the daemon's registry handle: rotate the default image.
	old := GoldenImage(7, testMem, testBlock)
	v2bytes := append([]byte(nil), old...)
	copy(v2bytes[2*testBlock:3*testBlock], make([]byte, testBlock))
	if _, err := w.srv.Images().Rotate(DefaultImageName, verifier.ImageOf(v2bytes, testBlock)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.srv.Images().AdvanceEpoch()
	}

	box := newProverBox(t, w, "prv-stale")
	prv, err := NewProver("prv-stale", DefaultKey, old, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	r := selfMeasure(t, prv, 1)
	box.send(t, transport.Msg{Kind: transport.KindCollection, Image: "default@v1",
		Reports: []*core.Report{&r}})
	v := box.await(t, transport.KindVerdict)
	if v.OK || v.Reason != ReasonStaleImage {
		t.Fatalf("stale verdict: ok=%v reason=%q", v.OK, v.Reason)
	}
	// Unknown image name: its own reason.
	r2 := selfMeasure(t, prv, 2)
	box.send(t, transport.Msg{Kind: transport.KindCollection, Image: "ghost",
		Reports: []*core.Report{&r2}})
	v = box.await(t, transport.KindVerdict)
	if v.OK || v.Reason != ReasonUnknownImage {
		t.Fatalf("unknown verdict: ok=%v reason=%q", v.OK, v.Reason)
	}
	// The binding from the first contact ("default", normalized away)
	// conflicts with a later named claim.
	r3 := selfMeasure(t, prv, 3)
	box.send(t, transport.Msg{Kind: transport.KindCollection, Image: "default@v2",
		Reports: []*core.Report{&r3}})
	v = box.await(t, transport.KindVerdict)
	if v.OK {
		t.Fatalf("old-image device accepted against v2: %+v", v)
	}
}

// TestCheckpointCarriesImageBindings pins checkpoint codec v4: prover
// image bindings survive WriteCheckpoint → Restore, pre-v4 files still
// decode, and a binding naming an image the restoring registry lacks
// falls back to the default and is counted.
func TestCheckpointCarriesImageBindings(t *testing.T) {
	s, sensor, gateway := multiImageServer(t, 1)
	ps := imageProver(t, "sns-0", sensor, "sensor")
	pg := imageProver(t, "gtw-0", gateway, "gateway")
	collect(t, s, ps, "sensor", 1, 2)
	collect(t, s, pg, "gateway", 1, 2)

	cp := s.Checkpoint()
	// "sensor" is the default: normalized away, so only the gateway
	// binding is persisted.
	if len(cp.Images) != 1 || cp.Images["gtw-0"] != "gateway" {
		t.Fatalf("checkpoint images = %v", cp.Images)
	}

	// Round-trip through the stream codec.
	var buf writerBuf
	if _, err := cp.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCheckpoint(buf.b)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Images) != 1 || dec.Images["gtw-0"] != "gateway" {
		t.Fatalf("decoded images = %v", dec.Images)
	}

	// Restore into a fresh server with the same registry: the gateway
	// prover's binding survives, so an imageless bundle verifies
	// against gateway content.
	s2, _, _ := multiImageServer(t, 1)
	s2.Restore(dec)
	pg2 := imageProver(t, "gtw-0", gateway, "")
	collect(t, s2, pg2, "", 3, 4)
	if c := s2.Counts(); c.Accepted != 2 || c.Rejected != 0 {
		t.Fatalf("restored binding: %+v", c)
	}
	// Replay protection restored too.
	collect(t, s2, pg2, "", 1, 2)
	if c := s2.Counts(); c.Replays != 2 {
		t.Fatalf("restored windows: %+v", c)
	}

	// Restore into a single-image server: the gateway binding names an
	// unknown image, falls back to the default, and is counted.
	s3 := localServer(t, Config{})
	s3.Restore(dec)
	if s3.ImageFallbacks() != 1 {
		t.Fatalf("fallbacks = %d", s3.ImageFallbacks())
	}
}

// TestCheckpointV3Legacy pins the v3 wire compatibility at the byte
// level: a homogeneous fleet's v4 file IS a v3 file with a bumped
// version byte, so flipping it back must decode identically — and a
// v3 file carrying a v4 image record must be rejected, exactly as a
// v3 binary would have done.
func TestCheckpointV3Legacy(t *testing.T) {
	s := localServer(t, Config{})
	image := GoldenImage(7, testMem, testBlock)
	for i := 0; i < 3; i++ {
		p, err := NewProver(fmt.Sprintf("prv%05d", i), DefaultKey, image, testBlock)
		if err != nil {
			t.Fatal(err)
		}
		var reports []core.Report
		for c := uint64(1); c <= 2; c++ {
			reports = append(reports, selfMeasure(t, p, c))
		}
		s.Ingest(p.Name, transport.KindCollection, reports)
	}
	cp := s.Checkpoint()
	if cp.Images != nil {
		t.Fatalf("homogeneous fleet stored bindings: %v", cp.Images)
	}
	var buf writerBuf
	if _, err := cp.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := append([]byte(nil), buf.b...)
	v3[2] = checkpointVersion3
	dec, err := DecodeCheckpoint(v3)
	if err != nil {
		t.Fatalf("v3 decode: %v", err)
	}
	if len(dec.Erasmus) != len(cp.Erasmus) || dec.NonceCtr != cp.NonceCtr {
		t.Fatalf("v3 decode mangled: %d windows", len(dec.Erasmus))
	}

	// A v4 file WITH image records downgraded to v3 must reject.
	cp.Images = map[string]string{"prv00000": "gateway"}
	var buf4 writerBuf
	if _, err := cp.EncodeTo(&buf4); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf4.b...)
	bad[2] = checkpointVersion3
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("strict v3 decode accepted an image record")
	}
	// And at v4 it round-trips.
	dec4, err := DecodeCheckpoint(buf4.b)
	if err != nil {
		t.Fatal(err)
	}
	if dec4.Images["prv00000"] != "gateway" {
		t.Fatalf("v4 images = %v", dec4.Images)
	}
}

// writerBuf is a minimal io.Writer collecting bytes.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestServerVerifyMultiImageZeroAllocs gates the named-image accept
// path at zero heap allocations per report: the wire image id is
// parsed alloc-free, the binding check and registry resolve are map
// probes on value keys, and the rest is the single-image steady path.
func TestServerVerifyMultiImageZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race suite")
	}
	const n = 512
	s, sensor, gateway := multiImageServer(t, 1)
	goldens := []*mem.Golden{sensor, gateway}
	classes := []string{"sensor", "gateway"}

	bundles := make([][]core.Report, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		p := imageProver(t, fmt.Sprintf("prv%05d", i), goldens[i%2], classes[i%2])
		names[i] = p.Name
		s.IngestImage(p.Name, transport.KindCollection, classes[i%2],
			[]core.Report{selfMeasure(t, p, 1)})
		bundles[i] = []core.Report{selfMeasure(t, p, 2)}
	}
	// Warm both classes' counter-2 expected tags and the scratch pool.
	s.IngestImage(names[0], transport.KindCollection, classes[0], bundles[0])
	s.IngestImage(names[1], transport.KindCollection, classes[1], bundles[1])

	i := 2
	avg := testing.AllocsPerRun(n-3, func() {
		s.IngestImage(names[i], transport.KindCollection, classes[i%2], bundles[i])
		i++
	})
	if avg != 0 {
		t.Fatalf("multi-image verify path allocates %.2f allocs/op, want 0", avg)
	}
	if c := s.Counts(); c.Accepted != uint64(2*n) {
		t.Fatalf("accepted %d, want %d (a measured report was rejected)", c.Accepted, 2*n)
	}
}

// TestServerVerifyMultiImageOverhead gates the heterogeneous-fleet
// verify cost: routing every bundle through the registry by wire
// image id must stay within 1.15x of the single-image steady path.
// The two arms are measured round-by-round interleaved, so clock
// drift and GC weather hit both equally — a cross-benchmark median
// comparison would confound the ratio with run ordering.
func TestServerVerifyMultiImageOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts timing; the gate runs in the non-race suite")
	}
	const fleet = 2048
	const rounds = 16
	const warmup = 2

	single := localServer(t, Config{Stripes: 8})
	image := GoldenImage(7, testMem, testBlock)
	sNames := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		p, err := NewProver(fmt.Sprintf("sprv%05d", i), DefaultKey, image, testBlock)
		if err != nil {
			t.Fatal(err)
		}
		sNames[i] = p.Name
		single.Ingest(p.Name, transport.KindCollection, []core.Report{selfMeasure(t, p, 1)})
	}

	classes := []string{"sensor", "actuator", "gateway", "camera"}
	set := verifier.NewImageSet(verifier.ImageSetConfig{KeepEpochs: 64})
	images := make([][]byte, len(classes))
	for c, name := range classes {
		images[c] = GoldenImage(uint64(7+c), testMem, testBlock)
		if _, err := set.Add(name, verifier.ImageOf(images[c], testBlock)); err != nil {
			t.Fatal(err)
		}
	}
	multi, err := Serve(transport.NewLocal(), Config{Images: set, Stripes: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(multi.Close)
	mNames := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		c := i % len(classes)
		p, err := NewProver(fmt.Sprintf("mprv%05d", i), DefaultKey, images[c], testBlock)
		if err != nil {
			t.Fatal(err)
		}
		mNames[i] = p.Name
		multi.IngestImage(p.Name, transport.KindCollection, classes[c], []core.Report{selfMeasure(t, p, 1)})
	}

	// Template bundles per counter: the single arm shares one, the
	// multi arm one per class (shared key ⇒ identical same-class
	// reports for a given counter).
	total := warmup + rounds
	sBundle := make([][]core.Report, total)
	mBundle := make([][][]core.Report, len(classes))
	sp, err := NewProver("tmpl", DefaultKey, image, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < total; r++ {
		sBundle[r] = []core.Report{selfMeasure(t, sp, uint64(2+r))}
	}
	for c := range classes {
		p, err := NewProver("tmpl", DefaultKey, images[c], testBlock)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < total; r++ {
			mBundle[c] = append(mBundle[c], []core.Report{selfMeasure(t, p, uint64(2+r))})
		}
	}

	singleRound := func(r int) {
		for i := 0; i < fleet; i++ {
			single.Ingest(sNames[i], transport.KindCollection, sBundle[r])
		}
	}
	multiRound := func(r int) {
		for i := 0; i < fleet; i++ {
			c := i % len(classes)
			multi.IngestImage(mNames[i], transport.KindCollection, classes[c], mBundle[c][r])
		}
	}
	for r := 0; r < warmup; r++ {
		singleRound(r)
		multiRound(r)
	}
	var sNS, mNS int64
	for r := warmup; r < total; r++ {
		t0 := time.Now()
		singleRound(r)
		sNS += time.Since(t0).Nanoseconds()
		t0 = time.Now()
		multiRound(r)
		mNS += time.Since(t0).Nanoseconds()
	}
	if c := single.Counts(); c.Rejected != 0 {
		t.Fatalf("single arm rejected %d", c.Rejected)
	}
	if c := multi.Counts(); c.Rejected != 0 {
		t.Fatalf("multi arm rejected %d", c.Rejected)
	}
	ratio := float64(mNS) / float64(sNS)
	ops := int64(fleet * rounds)
	t.Logf("single %.0f ns/report, multi-image %.0f ns/report (%.3fx)",
		float64(sNS)/float64(ops), float64(mNS)/float64(ops), ratio)
	if ratio > 1.15 {
		t.Fatalf("multi-image verify is %.3fx the single-image path, budget 1.15x", ratio)
	}
}
