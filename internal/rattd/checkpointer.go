package rattd

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Checkpointer persists one Server's fleet state to disk in the
// background: a base snapshot file plus a chain of delta files
// holding only the provers dirtied since the previous write, so the
// steady-state disk cost is O(changes), not O(fleet). It never stops
// ingest — snapshots stream stripe-at-a-time off the server's dirty
// tracking (see WriteCheckpoint).
//
// On-disk layout for a configured Path P:
//
//	P        the base snapshot (chain seq 0)
//	P.d1 …   delta files, one per snapshot since the base
//	P.tmp    in-flight base write (ignored by LoadChain)
//
// Crash-safety protocol: the base is written to P.tmp, fsynced, and
// atomically renamed over P (then the directory is synced), so P is
// always a complete snapshot of *some* generation — a crash before
// the rename leaves the old chain fully intact. Delta files are
// written in place and fsynced; a crash mid-delta leaves a torn tail
// that restore salvages up to the last complete record
// (DecodeChain), losing at most the final interval's freshness
// updates — the same exposure an interval-based checkpointer has
// anyway. Compaction (a fresh base) bumps the chain ID before old
// deltas are deleted, so a crash between the base rename and the
// delete leaves stale deltas that restore rejects by chain ID.
type Checkpointer struct {
	srv *Server
	cfg CheckpointerConfig

	mu         sync.Mutex
	chainID    uint64 // chain the current base starts; 0 = no base yet
	nextSeq    uint32 // seq of the next delta file
	baseBytes  int64  // size of the current base
	deltaBytes int64  // cumulative delta bytes since the base
	forceFull  bool   // next write must be a base (startup, prior error)
	lastNonce  uint64 // nonce cursor as of the last successful write
	haveNonce  bool
	stats      CheckpointerStats

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// CheckpointerConfig configures a Checkpointer.
type CheckpointerConfig struct {
	// Path is the base snapshot file; deltas live at Path.d1, Path.d2…
	Path string
	// Interval between background snapshots; <= 0 disables the
	// background goroutine (Tick/Close still write on demand).
	Interval time.Duration
	// MaxDeltas caps the chain length before compaction into a fresh
	// base. Default 16.
	MaxDeltas int
	// MaxDeltaFrac compacts once cumulative delta bytes exceed this
	// fraction of the base size — past that point replay-at-restore
	// costs more than a fresh base would. Default 0.5.
	MaxDeltaFrac float64
	// PriorChainID seeds chain numbering after a restore so the new
	// chain is distinguishable from the restored one. 0 for cold start.
	PriorChainID uint64
	// Logf, if set, receives one line per write error.
	Logf func(format string, args ...any)
}

// CheckpointerStats are cumulative counters plus the last write's
// cost, for the daemon stats line.
type CheckpointerStats struct {
	Fulls       uint64        // base snapshots written
	Deltas      uint64        // delta files written
	Compactions uint64        // fulls that replaced an over-long chain
	Skips       uint64        // ticks skipped because nothing changed
	Errors      uint64        // failed writes (next write is a full)
	LastDirty   int64         // dirty provers consumed by the last write
	LastBytes   int64         // bytes of the last write
	LastWrote   time.Duration // wall time of the last write
}

// NewCheckpointer returns a stopped checkpointer; call Start to run
// it on its interval, or Tick to drive it manually.
func NewCheckpointer(s *Server, cfg CheckpointerConfig) *Checkpointer {
	if cfg.MaxDeltas <= 0 {
		cfg.MaxDeltas = 16
	}
	if cfg.MaxDeltaFrac <= 0 {
		cfg.MaxDeltaFrac = 0.5
	}
	return &Checkpointer{
		srv:       s,
		cfg:       cfg,
		chainID:   0,
		forceFull: true,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the background loop (no-op when Interval <= 0).
func (c *Checkpointer) Start() {
	if c.cfg.Interval <= 0 {
		return
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := c.Tick(); err != nil && c.cfg.Logf != nil {
					c.cfg.Logf("rattd: checkpoint %s: %v", c.cfg.Path, err)
				}
			case <-c.stop:
				return
			}
		}
	}()
}

// Close stops the background loop and writes one final snapshot so
// shutdown is durable (skipped, like any tick, when nothing changed).
func (c *Checkpointer) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
	return c.Tick()
}

// Stats returns a snapshot of the counters.
func (c *Checkpointer) Stats() CheckpointerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Tick makes one checkpoint decision and, unless the server is
// clean, performs the write: a base when none exists (or after an
// error, or when the chain is due for compaction), a delta
// otherwise. Safe to call concurrently with ingest; calls serialize
// against each other.
func (c *Checkpointer) Tick() error {
	c.mu.Lock()
	defer c.mu.Unlock()

	dirty := c.srv.DirtyCount()
	_, nonce := c.srv.leaseState()
	if !c.forceFull && dirty == 0 && c.haveNonce && nonce == c.lastNonce {
		// Nothing moved since the last write: the chain on disk is
		// already exact.
		c.stats.Skips++
		return nil
	}

	full := c.forceFull
	compact := false
	if !full && (int(c.nextSeq) > c.cfg.MaxDeltas ||
		float64(c.deltaBytes) > c.cfg.MaxDeltaFrac*float64(c.baseBytes)) {
		full, compact = true, true
	}

	start := time.Now()
	var stats SnapshotStats
	var err error
	if full {
		stats, err = c.writeFull()
	} else {
		stats, err = c.writeDelta()
	}
	if err != nil {
		// The failed write consumed the dirty set; only a fresh base
		// can recover those records.
		c.forceFull = true
		c.stats.Errors++
		return err
	}
	if full {
		c.stats.Fulls++
		if compact {
			c.stats.Compactions++
		}
	} else {
		c.stats.Deltas++
	}
	c.stats.LastDirty = dirty
	c.stats.LastBytes = stats.Bytes
	c.stats.LastWrote = time.Since(start)
	c.lastNonce = stats.NonceCtr
	c.haveNonce = true
	return nil
}

// writeFull writes a fresh base under a new chain ID via temp +
// fsync + rename, then retires the previous chain's delta files.
func (c *Checkpointer) writeFull() (SnapshotStats, error) {
	next := c.chainID + 1
	if c.cfg.PriorChainID >= next {
		next = c.cfg.PriorChainID + 1
	}
	tmp := c.cfg.Path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SnapshotStats{}, err
	}
	stats, err := c.srv.WriteCheckpoint(f, SnapshotOptions{ChainID: next})
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, c.cfg.Path)
	}
	if err != nil {
		os.Remove(tmp)
		return stats, err
	}
	syncDir(c.cfg.Path)

	// The new base supersedes every prior delta; a crash before this
	// cleanup only leaves files the chain-ID check ignores.
	oldTop := c.nextSeq
	c.chainID = next
	c.nextSeq = 1
	c.baseBytes = stats.Bytes
	c.deltaBytes = 0
	c.forceFull = false
	for seq := uint32(1); seq <= oldTop; seq++ {
		os.Remove(deltaPath(c.cfg.Path, seq))
	}
	syncDir(c.cfg.Path)
	return stats, nil
}

// writeDelta writes the next delta file in place (no rename: a torn
// delta tail is recoverable by design, see DecodeChain).
func (c *Checkpointer) writeDelta() (SnapshotStats, error) {
	path := deltaPath(c.cfg.Path, c.nextSeq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SnapshotStats{}, err
	}
	stats, err := c.srv.WriteCheckpoint(f, SnapshotOptions{
		Delta: true, ChainID: c.chainID, Seq: c.nextSeq,
	})
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return stats, err
	}
	c.nextSeq++
	c.deltaBytes += stats.Bytes
	return stats, nil
}

func deltaPath(base string, seq uint32) string {
	return base + ".d" + strconv.FormatUint(uint64(seq), 10)
}

// syncDir fsyncs the directory holding path so a rename or unlink is
// durable; best-effort (some filesystems refuse directory syncs).
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// LoadChain reads the checkpoint chain rooted at path — the base
// plus consecutive delta files — and returns the merged state.
// Returns os.ErrNotExist (wrapped) when no base exists. Stale or
// torn deltas degrade per DecodeChain; an in-flight ".tmp" from a
// crashed base write is ignored. The error is hard only when the
// base itself is unreadable or corrupt.
func LoadChain(path string) (*Checkpoint, ChainStats, error) {
	base, err := os.ReadFile(path)
	if err != nil {
		return nil, ChainStats{}, err
	}
	var deltas [][]byte
	for seq := uint32(1); ; seq++ {
		db, err := os.ReadFile(deltaPath(path, seq))
		if err != nil {
			// A gap ends the chain: later files are stale leftovers.
			break
		}
		deltas = append(deltas, db)
	}
	cp, st, err := DecodeChain(base, deltas...)
	if err != nil {
		return nil, st, fmt.Errorf("%s: %w", path, err)
	}
	return cp, st, nil
}
