package rattd

import (
	"math"
	"testing"
)

// windowOf builds a DedupWindow holding exactly the given counters
// (added in order) — test shorthand.
func windowOf(ctrs ...uint64) DedupWindow {
	var w DedupWindow
	for _, c := range ctrs {
		w.Add(c)
	}
	return w
}

func TestDedupWindowBasics(t *testing.T) {
	var w DedupWindow
	if w.Seen(1) || w.Seen(0) {
		t.Fatal("zero window claims to have seen counters")
	}
	if !w.Add(5) {
		t.Fatal("fresh counter rejected")
	}
	if !w.Seen(5) {
		t.Fatal("added counter not seen")
	}
	if w.Add(5) {
		t.Fatal("replay accepted")
	}
	// Out-of-order within the window.
	if !w.Add(3) || !w.Seen(3) || w.Add(3) {
		t.Fatal("in-window backfill broken")
	}
	if w.Seen(4) {
		t.Fatal("untracked in-window counter reads as seen")
	}
	if got := w.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
}

func TestDedupWindowSlide(t *testing.T) {
	var w DedupWindow
	for c := uint64(1); c <= DedupBits+10; c++ {
		if !w.Add(c) {
			t.Fatalf("fresh counter %d rejected", c)
		}
		if w.Add(c) {
			t.Fatalf("immediate replay of %d accepted", c)
		}
	}
	if w.Top != DedupBits+10 {
		t.Fatalf("Top = %d, want %d", w.Top, DedupBits+10)
	}
	// Everything in (Top-DedupBits, Top] is exactly tracked...
	for c := w.Top - DedupBits + 1; c <= w.Top; c++ {
		if !w.Seen(c) {
			t.Fatalf("in-window counter %d forgot its accept", c)
		}
	}
	// ...and everything at or below Top-DedupBits is conservatively a
	// replay, even a counter never actually accepted.
	if !w.Seen(1) || !w.Seen(w.Top-DedupBits) {
		t.Fatal("aged-out counters must read as seen (conservative reject)")
	}
	if w.Add(2) {
		t.Fatal("aged-out counter accepted")
	}
	// A far jump clears the skipped range.
	jump := w.Top + 3*DedupBits
	if !w.Add(jump) {
		t.Fatal("far-future counter rejected")
	}
	for c := jump - DedupBits + 1; c < jump; c++ {
		if w.Seen(c) {
			t.Fatalf("counter %d seen after window jump cleared it", c)
		}
	}
	if got := w.Count(); got != 1 {
		t.Fatalf("Count() after jump = %d, want 1", got)
	}
}

func TestDedupWindowCounters(t *testing.T) {
	w := windowOf(7, 3, 9)
	got := w.Counters()
	want := []uint64{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Counters() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counters() = %v, want %v", got, want)
		}
	}
	if (&DedupWindow{}).Counters() != nil {
		t.Fatal("zero window should report no counters")
	}
	// Top at the very end of the counter space must not wrap the scan.
	var hi DedupWindow
	hi.Add(math.MaxUint64)
	if cs := hi.Counters(); len(cs) != 1 || cs[0] != math.MaxUint64 {
		t.Fatalf("Counters() at MaxUint64 = %v", cs)
	}
}

func TestDedupWindowCheckpointCanonical(t *testing.T) {
	// Two histories converging to the same tracked set must encode
	// identically (canonical form: out-of-window bits zero).
	a := windowOf(1, 2, 3, 300)
	b := windowOf(300)
	b.Add(300 - DedupBits + 1) // in-window
	a = windowOf(300, 300-DedupBits+1)
	if a != b {
		t.Fatalf("equal tracked sets differ structurally:\n a=%+v\n b=%+v", a, b)
	}
}
