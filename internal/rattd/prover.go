package rattd

import (
	"fmt"
	"math/rand/v2"

	"saferatt/internal/core"
	"saferatt/internal/mem"
	"saferatt/internal/sim"
	"saferatt/internal/suite"
)

// GoldenImage deterministically generates the golden memory content a
// simulated device of the same seed would hold (the experiments
// world's fill), so a networked prover and a daemon can agree on an
// image by exchanging only (seed, size, block size).
func GoldenImage(seed uint64, size, blockSize int) []byte {
	m := mem.New(mem.Config{Size: size, BlockSize: blockSize, ROMBlocks: 1})
	m.FillRandom(rand.New(rand.NewPCG(seed, 0xfade)))
	return m.Snapshot()
}

// Prover computes real measurement tags over a private image copy —
// the same math the simulated device engine performs, without a sim
// kernel: the canonical measurement encoding is a pure function of
// (key, image, nonce, round, traversal order), so a remote prover
// needs only the image bytes and the scheme.
type Prover struct {
	Name      string
	Key       []byte
	Image     []byte
	BlockSize int
	Shuffled  bool
	Hash      suite.HashID
	// ImageName, when non-empty, is the golden-image id this prover
	// announces on every wire message ("name" or "name@vN") so a
	// multi-image daemon verifies it against the right registry entry.
	// Empty means the daemon's default image (the v1-peer behavior).
	ImageName string

	order []int // traversal scratch, reused across reports
}

// NewProver builds a prover over its (private) image copy.
func NewProver(name string, key, image []byte, blockSize int) (*Prover, error) {
	if blockSize <= 0 || len(image) == 0 || len(image)%blockSize != 0 {
		return nil, fmt.Errorf("rattd: prover image of %d bytes is not a positive multiple of block size %d",
			len(image), blockSize)
	}
	return &Prover{Name: name, Key: key, Image: image, BlockSize: blockSize, Hash: suite.SHA256}, nil
}

// tag measures the prover's image under (nonce, round).
func (p *Prover) tag(nonce []byte, round int) ([]byte, error) {
	scheme := suite.Scheme{Hash: p.Hash, Key: p.Key}
	n := len(p.Image) / p.BlockSize
	p.order = core.AppendOrderRegion(p.order[:0], p.Key, nonce, round, 0, n, p.Shuffled)
	t, err := scheme.AcquireTagger()
	if err != nil {
		return nil, err
	}
	defer scheme.ReleaseTagger(t)
	core.ExpectedStream(t, p.Image, p.BlockSize, nonce, round, p.order)
	return t.Tag()
}

func (p *Prover) report(mech core.MechanismID, nonce []byte, round int, ctr uint64, ts sim.Time) (*core.Report, error) {
	tag, err := p.tag(nonce, round)
	if err != nil {
		return nil, err
	}
	scheme := suite.Scheme{Hash: p.Hash, Key: p.Key}
	return &core.Report{
		Mechanism: mech, Scheme: scheme.Name(),
		Nonce: append([]byte(nil), nonce...), Round: round, Counter: ctr,
		Tag: tag, TS: ts, TE: ts,
		BlockSize: p.BlockSize, NumBlocks: len(p.Image) / p.BlockSize,
	}, nil
}

// Respond answers a SMART challenge nonce with a measurement report.
func (p *Prover) Respond(nonce []byte) (*core.Report, error) {
	return p.report(core.SMART, nonce, 0, 0, 0)
}

// SelfMeasure produces one ERASMUS self-measurement for counter ctr,
// with the counter-bound self-derived nonce the daemon expects.
func (p *Prover) SelfMeasure(ctr uint64) (*core.Report, error) {
	nonce := core.PRF(p.Key, "erasmus-nonce", ctr)
	return p.report(core.NoLock, nonce, 0, ctr, sim.Time(ctr)*sim.Time(sim.Second))
}

// SeedReport produces one SeED report for counter ctr, nonce-bound to
// the prover's derived schedule seed.
func (p *Prover) SeedReport(ctr uint64) (*core.Report, error) {
	nonce := core.PRF(SeedFor(p.Key, p.Name), "seed-nonce", ctr)
	return p.report(core.NoLock, nonce, 0, ctr, sim.Time(ctr)*sim.Time(sim.Second))
}

// ShardOf returns the prover's home shard in an n-shard tier — the
// client side of the tier's routing contract (rendezvous hash over
// the prover name; see ShardFor).
func (p *Prover) ShardOf(n int) int { return ShardFor(p.Name, n) }
