package rattd

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"saferatt/internal/channel"
	"saferatt/internal/core"
	"saferatt/internal/sim"
	"saferatt/internal/transport"
)

// TestShardForProperties pins the routing contract: deterministic,
// in-range, balanced, and minimally disruptive when the tier grows.
func TestShardForProperties(t *testing.T) {
	const n = 8
	const fleet = 40000
	counts := make([]int, n)
	moved := 0
	for i := 0; i < fleet; i++ {
		name := fmt.Sprintf("prv%05d", i)
		s := ShardFor(name, n)
		if s < 0 || s >= n {
			t.Fatalf("ShardFor(%q, %d) = %d out of range", name, n, s)
		}
		if again := ShardFor(name, n); again != s {
			t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", name, n, s, again)
		}
		counts[s]++
		if ShardFor(name, n+1) != s {
			moved++
		}
	}
	min, max := fleet, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio > 1.3 {
		t.Fatalf("rendezvous balance %v gives max/min %.3f > 1.3", counts, ratio)
	}
	// Rendezvous hashing moves ~1/(n+1) of keys when a shard joins;
	// allow double that before calling it broken.
	if lim := 2 * fleet / (n + 1); moved > lim {
		t.Fatalf("growing %d->%d shards moved %d/%d provers (limit %d)", n, n+1, moved, fleet, lim)
	}
	if ShardFor("anything", 1) != 0 || ShardFor("anything", 0) != 0 {
		t.Fatal("degenerate tier widths must map to shard 0")
	}
}

// TestCoordinatorLeasesDisjoint hammers Lease from many goroutines
// and checks every granted window is disjoint with a unique epoch.
func TestCoordinatorLeasesDisjoint(t *testing.T) {
	c := NewCoordinator(8, 64)
	const perShard = 200
	var mu sync.Mutex
	var leases []EpochLease
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				l := c.Lease(shard)
				mu.Lock()
				leases = append(leases, l)
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	sort.Slice(leases, func(a, b int) bool { return leases[a].Lo < leases[b].Lo })
	epochs := map[uint64]bool{}
	for i, l := range leases {
		if !l.Valid() {
			t.Fatalf("invalid lease %+v", l)
		}
		if epochs[l.Epoch] {
			t.Fatalf("duplicate epoch %d", l.Epoch)
		}
		epochs[l.Epoch] = true
		if i > 0 && l.Lo < leases[i-1].Hi {
			t.Fatalf("overlapping leases: %+v then %+v", leases[i-1], l)
		}
	}
	// A restored lease from a dead coordinator must fence future grants.
	c2 := NewCoordinator(2, 64)
	c2.Observe(EpochLease{Shard: 1, Epoch: 41, Lo: 1 << 20, Hi: 1<<20 + 64})
	if l := c2.Lease(0); l.Lo < 1<<20+64 {
		t.Fatalf("lease %+v not fenced past observed window", l)
	} else if l.Epoch != 42 {
		t.Fatalf("epoch sequence did not resume past observed lease: %+v", l)
	}
}

// TestTierChallengeNoncesUnique drives two shards on one Sim link
// with a tiny lease window, forcing many lease rotations, and checks
// that no challenge nonce is ever minted twice across the tier.
func TestTierChallengeNoncesUnique(t *testing.T) {
	k := sim.NewKernel()
	link := channel.New(channel.Config{Kernel: k, Latency: sim.Millisecond, Seed: 5})
	tr := transport.NewSim(link)
	tier, err := ServeTier([]transport.Transport{tr, tr}, TierConfig{
		Base:   Config{Ref: GoldenImage(7, testMem, testBlock), BlockSize: testBlock},
		Window: 3, // rotate every 3 challenges
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	nonces := map[string]string{} // nonce -> shard that minted it
	var mu sync.Mutex
	recv := 0
	if err := tr.Bind("prv-n", func(m transport.Msg) {
		if m.Kind == transport.KindChallenge {
			mu.Lock()
			if prev, dup := nonces[string(m.Nonce)]; dup {
				t.Errorf("challenge nonce reused (first minted by %s, again by %s)", prev, m.From)
			}
			nonces[string(m.Nonce)] = m.From
			recv++
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	const hellosPerShard = 50
	for i := 0; i < hellosPerShard; i++ {
		for s := 0; s < 2; s++ {
			if err := tr.Send(transport.Msg{From: "prv-n", To: ShardName(s), Kind: transport.KindHello}); err != nil {
				t.Fatal(err)
			}
			k.Run()
		}
	}
	if recv != 2*hellosPerShard {
		t.Fatalf("got %d challenges, want %d", recv, 2*hellosPerShard)
	}
	for s := 0; s < 2; s++ {
		if l := tier.Shard(s).Lease(); !l.Valid() || l.Shard != s {
			t.Fatalf("shard %d holds lease %+v", s, l)
		}
	}
}

// TestCheckpointCodec pins the canonical encoding and the strict
// decoder: round-trips are exact, equal state gives equal bytes, and
// malformed inputs fail instead of misparsing.
func TestCheckpointCodec(t *testing.T) {
	cp := &Checkpoint{
		Lease:    EpochLease{Shard: 3, Epoch: 17, Lo: 65537, Hi: 131073},
		NonceCtr: 65600,
		Erasmus: map[string]DedupWindow{
			"prv00001": windowOf(1, 2, 3),
			"prv00007": windowOf(5, 9),
			"zz-last":  {},
		},
		Seed: map[string]uint64{"prv00001": 12, "seed-only": 4},
	}
	enc := encodeCP(t, cp)
	if !bytes.Equal(enc, encodeCP(t, cp)) {
		t.Fatal("encoding is not deterministic")
	}
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, cp)
	}
	for i := 1; i < len(enc); i++ {
		if _, err := DecodeCheckpoint(enc[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[2] = CheckpointVersion + 1
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("future version accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[3] |= 0x80
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("unknown flags accepted")
	}
	// The trailing record count is a torn-write detector: a count that
	// disagrees with the stream must error.
	lying := append([]byte(nil), enc...)
	lying[len(lying)-1] ^= 1
	if _, err := DecodeCheckpoint(lying); err == nil {
		t.Fatal("lying record count accepted")
	}

	// Delta headers (chain id, sequence, delta flag) round-trip too.
	dcp := &Checkpoint{
		Lease:    cp.Lease,
		NonceCtr: 70000,
		Erasmus:  map[string]DedupWindow{"prv00007": windowOf(11)},
		Seed:     map[string]uint64{},
		Delta:    true,
		ChainID:  9,
		Seq:      3,
	}
	ddec, err := DecodeCheckpoint(encodeCP(t, dcp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dcp, ddec) {
		t.Fatalf("delta round trip mismatch:\n got %+v\nwant %+v", ddec, dcp)
	}
}

// encodeCP encodes via the streaming encoder into memory.
func encodeCP(t testing.TB, cp *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := cp.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardRestartMidEpoch is the crash-recovery acceptance test:
// populate a 2-shard Net tier, checkpoint one shard mid-epoch, kill
// its socket, restart it from the checkpoint on the same address, and
// verify enrolled provers keep verifying without re-enrollment while
// previously-seen reports still read as replays.
func TestShardRestartMidEpoch(t *testing.T) {
	image := GoldenImage(7, testMem, testBlock)
	var lis [2]*transport.Net
	var trs []transport.Transport
	for i := range lis {
		l, err := transport.Listen(transport.NetConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		lis[i] = l
		trs = append(trs, l)
	}
	tier, err := ServeTier(trs, TierConfig{Base: Config{Ref: image, BlockSize: testBlock}})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	cli, err := transport.Dial(lis[0].Addr().String(), transport.NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := range lis {
		if err := cli.AddRoute(ShardName(i), lis[i].Addr().String()); err != nil {
			t.Fatal(err)
		}
	}

	// A prover homed on shard 1 — the shard we will kill.
	const victim = 1
	name := ""
	for i := 0; name == ""; i++ {
		n := fmt.Sprintf("prv%05d", i)
		if ShardFor(n, 2) == victim {
			name = n
		}
	}
	prv, err := NewProver(name, DefaultKey, image, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make(chan transport.Msg, 32)
	if err := cli.Bind(name, func(m transport.Msg) { inbox <- m }); err != nil {
		t.Fatal(err)
	}
	await := func(kind transport.Kind) transport.Msg {
		t.Helper()
		for {
			m := <-inbox
			if m.Kind == kind {
				return m
			}
		}
	}
	send := func(m transport.Msg) {
		t.Helper()
		m.From, m.To = name, ShardName(victim)
		if err := cli.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(lo, hi uint64) *transport.Msg {
		t.Helper()
		var history []*core.Report
		for ctr := lo; ctr <= hi; ctr++ {
			r, err := prv.SelfMeasure(ctr)
			if err != nil {
				t.Fatal(err)
			}
			history = append(history, r)
		}
		send(transport.Msg{Kind: transport.KindCollection, Reports: history})
		v := await(transport.KindVerdict)
		return &v
	}

	// Mid-epoch state: one SMART round and one collection.
	send(transport.Msg{Kind: transport.KindHello})
	ch1 := await(transport.KindChallenge)
	rep, err := prv.Respond(ch1.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	send(transport.Msg{Kind: transport.KindReport, Reports: []*core.Report{rep}})
	if v := await(transport.KindVerdict); !v.OK {
		t.Fatalf("pre-kill SMART rejected: %s", v.Reason)
	}
	if v := collect(1, 3); !v.OK {
		t.Fatalf("pre-kill collection rejected: %s", v.Reason)
	}
	waitFor(t, func() bool { return tier.Shard(victim).Counts().Accepted == 4 })

	// Persist through the on-disk chain the daemon actually writes:
	// base now, a delta after the SeED report lands.
	cpPath := filepath.Join(t.TempDir(), "cp")
	// MaxDeltaFrac is disarmed: with a 1-prover fleet any delta
	// exceeds half the base, and this test wants the chain kept.
	ckpt := NewCheckpointer(tier.Shard(victim), CheckpointerConfig{Path: cpPath, MaxDeltaFrac: 100})
	if err := ckpt.Tick(); err != nil {
		t.Fatal(err)
	}
	sr, err := prv.SeedReport(5)
	if err != nil {
		t.Fatal(err)
	}
	send(transport.Msg{Kind: transport.KindSeedReport, Reports: []*core.Report{sr}})
	waitFor(t, func() bool { return tier.Shard(victim).Counts().Accepted == 5 })
	if err := ckpt.Tick(); err != nil {
		t.Fatal(err)
	}

	// One more SMART round advances the nonce cursor, then the crash:
	// the delta capturing it is torn mid-write, a stale delta from a
	// dead chain lingers, and a half-written base temp file survives.
	// Restore must salvage the torn tail, drop the stale file, ignore
	// the temp — and lose none of the pre-crash freshness state.
	send(transport.Msg{Kind: transport.KindHello})
	ch1b := await(transport.KindChallenge)
	rep1b, err := prv.Respond(ch1b.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	send(transport.Msg{Kind: transport.KindReport, Reports: []*core.Report{rep1b}})
	if v := await(transport.KindVerdict); !v.OK {
		t.Fatalf("pre-kill SMART #2 rejected: %s", v.Reason)
	}
	if err := ckpt.Tick(); err != nil {
		t.Fatal(err)
	}
	d2 := cpPath + ".d2"
	info, err := os.Stat(d2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(d2, info.Size()-4); err != nil {
		t.Fatal(err)
	}
	stale := encodeCP(t, &Checkpoint{
		Erasmus: map[string]DedupWindow{name: {}}, // would wipe the window if applied
		Seed:    map[string]uint64{},
		Delta:   true, ChainID: 99, Seq: 3,
	})
	if err := os.WriteFile(cpPath+".d3", stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpPath+".tmp", []byte("half-written base"), 0o644); err != nil {
		t.Fatal(err)
	}

	cp, chain, err := LoadChain(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Applied != 2 || !chain.Truncated || chain.Dropped != 1 {
		t.Fatalf("chain restore %+v, want 2 applied / truncated / 1 dropped", chain)
	}
	if !cp.Lease.Valid() || cp.NonceCtr <= cp.Lease.Lo {
		t.Fatalf("checkpoint not mid-epoch: %+v", cp.Lease)
	}
	if w := cp.Erasmus[name]; w.Count() != 3 || cp.Seed[name] != 5 {
		t.Fatalf("checkpoint missing enrollment: %+v", cp)
	}
	addr := lis[victim].Addr().String()
	preLease := cp.Lease
	lis[victim].Close()

	// Restart on the same address from the serialized checkpoint.
	relis, err := transport.Listen(transport.NetConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer relis.Close()
	if err := tier.Restart(victim, relis, cp); err != nil {
		t.Fatal(err)
	}
	if got := tier.Shard(victim).Enrolled(); got != 1 {
		t.Fatalf("restored shard enrolled %d provers, want 1", got)
	}

	// Replayed collection: previously-accepted counters must still be
	// rejected, with the replay counted.
	if v := collect(1, 3); v.OK {
		t.Fatal("replayed collection accepted after restore")
	}
	if c := tier.Shard(victim).Counts(); c.Replays == 0 {
		t.Fatalf("replays not counted after restore: %+v", c)
	}
	// Fresh counters keep verifying with no re-enrollment handshake.
	if v := collect(4, 6); !v.OK {
		t.Fatalf("fresh collection rejected after restore: %s", v.Reason)
	}
	// SeED: watermark survived — replay rejected, next counter accepted.
	for _, tc := range []struct {
		ctr    uint64
		wantOK bool
	}{{5, false}, {6, true}} {
		sr, err := prv.SeedReport(tc.ctr)
		if err != nil {
			t.Fatal(err)
		}
		before := tier.Shard(victim).Counts()
		send(transport.Msg{Kind: transport.KindSeedReport, Reports: []*core.Report{sr}})
		waitFor(t, func() bool {
			c := tier.Shard(victim).Counts()
			return c.Accepted+c.Rejected > before.Accepted+before.Rejected
		})
		c := tier.Shard(victim).Counts()
		if tc.wantOK && c.Accepted != before.Accepted+1 {
			t.Fatalf("SeED ctr %d not accepted after restore: %+v", tc.ctr, c)
		}
		if !tc.wantOK && c.Rejected != before.Rejected+1 {
			t.Fatalf("SeED replay ctr %d not rejected after restore: %+v", tc.ctr, c)
		}
	}
	// SMART still works, and the restored lease means the new
	// challenge cannot collide with any pre-kill nonce.
	send(transport.Msg{Kind: transport.KindHello})
	ch2 := await(transport.KindChallenge)
	if bytes.Equal(ch1.Nonce, ch2.Nonce) {
		t.Fatal("challenge nonce reused across restart")
	}
	rep2, err := prv.Respond(ch2.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	send(transport.Msg{Kind: transport.KindReport, Reports: []*core.Report{rep2}})
	if v := await(transport.KindVerdict); !v.OK {
		t.Fatalf("post-restore SMART rejected: %s", v.Reason)
	}
	// The coordinator was fenced: no future lease may overlap the
	// restored shard's window.
	if l := tier.Coordinator().Lease(0); l.Lo < preLease.Hi {
		t.Fatalf("coordinator re-issued counters under restored lease: %+v vs %+v", l, preLease)
	}
}

// TestShardTier10k is the CI smoke gate: 10k provers (1k under
// -short) through a 4-shard Net tier with zero verification failures
// and per-shard balance within 1.5x.
func TestShardTier10k(t *testing.T) {
	provers := 10000
	if testing.Short() {
		provers = 1000
	}
	image := GoldenImage(7, testMem, testBlock)
	const shards = 4
	var trs []transport.Transport
	var addrs []string
	for i := 0; i < shards; i++ {
		l, err := transport.Listen(transport.NetConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		trs = append(trs, l)
		addrs = append(addrs, l.Addr().String())
	}
	tier, err := ServeTier(trs, TierConfig{Base: Config{Ref: image, BlockSize: testBlock}})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	res, err := RunFleet(FleetConfig{
		Addrs:       addrs,
		Provers:     provers,
		Concurrency: 512,
		Image:       image,
		BlockSize:   testBlock,
		History:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures() != 0 {
		t.Fatalf("%d verification failures (smart %d, collect %d) across %d provers",
			res.Failures(), res.SMARTFail, res.CollectFail, provers)
	}
	if res.SMARTOK != provers || res.CollectOK != provers {
		t.Fatalf("incomplete fleet: %+v", res)
	}
	counts := tier.Counts()
	if want := uint64(provers * 3); counts.Accepted < want {
		t.Fatalf("tier accepted %d reports, want >= %d", counts.Accepted, want)
	}
	if bal := tier.Balance(); math.IsInf(bal, 1) || bal > 1.5 {
		t.Fatalf("per-shard balance %.3f > 1.5 (per-shard %+v)", bal, tier.PerShard())
	}
	// Client-side routing must agree with what the shards saw: every
	// shard's challenge count matches the provers routed to it.
	per := tier.PerShard()
	for i, n := range res.ShardProvers {
		if per[i].Challenges < uint64(n) {
			t.Fatalf("shard %d answered %d challenges for %d routed provers", i, per[i].Challenges, n)
		}
	}
	t.Logf("%d provers / %d shards: balance %.3f, per-shard %v, p50 %v p99 %v",
		provers, shards, tier.Balance(), res.ShardProvers, res.P50, res.P99)
}

// waitFor spins until cond holds (Net delivery is asynchronous).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 4000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
