package rattd

import (
	"testing"

	"saferatt/internal/transport"
)

// TestE2ELoopbackFleet is the acceptance end-to-end: a daemon on a real
// UDP loopback socket serving a fleet of concurrent provers, each
// completing a SMART challenge/response round and an ERASMUS
// collection, with 5% datagram loss injected on BOTH sides so the
// retry/backoff machinery is load-bearing. Zero verification failures
// allowed; round-trip latency percentiles are reported. The round runs
// in both wire modes: Batched (default coalescing — reports ride batch
// frames) and PerReport (coalescing disabled, one data frame per
// message, the wire-v1-compatible shape).
func TestE2ELoopbackFleet(t *testing.T) {
	provers := 1000
	if testing.Short() {
		provers = 100
	}
	modes := []struct {
		name    string
		tune    func(c *transport.NetConfig)
		batched bool
	}{
		{"Batched", func(c *transport.NetConfig) {}, true},
		{"PerReport", func(c *transport.NetConfig) { c.BatchBytes = -1; c.CoalesceDelay = -1 }, false},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			image := GoldenImage(42, testMem, testBlock)
			srvCfg := transport.NetConfig{DropRate: 0.05, DropSeed: 11}
			mode.tune(&srvCfg)
			lis, err := transport.Listen(srvCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer lis.Close()
			srv, err := Serve(lis, Config{Ref: image, BlockSize: testBlock})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			cliCfg := transport.NetConfig{DropRate: 0.05, DropSeed: 12}
			mode.tune(&cliCfg)
			res, err := RunFleet(FleetConfig{
				Addr:      lis.Addr().String(),
				Provers:   provers,
				Image:     image,
				BlockSize: testBlock,
				Net:       cliCfg,
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SMARTOK != provers || res.CollectOK != provers || res.Failures() != 0 {
				t.Fatalf("fleet failures: %+v (daemon counts %+v)", res, srv.Counts())
			}
			t.Logf("fleet %d provers: SMART p50=%v p99=%v max=%v", provers, res.P50, res.P99, res.Max)
			t.Logf("client net: %+v", res.Net)
			t.Logf("daemon net: %+v", lis.Stats())
			t.Logf("daemon batch: %+v", srv.BatchStats())
			if res.Net.Injected == 0 {
				t.Fatal("injected loss never fired; e2e did not exercise retries")
			}
			// Amortization sanity: the shared-nonce collection epochs must
			// have been computed once each, not once per prover.
			bs := srv.BatchStats()
			if bs.Computed >= bs.Reports {
				t.Fatalf("batch fast path never amortized: %+v", bs)
			}
			if mode.batched {
				// With a thousand provers sharing one socket, some sends
				// must genuinely have coalesced into batch frames on at
				// least one side of the link.
				if res.Net.Coalesced == 0 && lis.Stats().Coalesced == 0 {
					t.Fatalf("batched mode never coalesced: cli %+v srv %+v", res.Net, lis.Stats())
				}
			} else if res.Net.BatchesSent != 0 || lis.Stats().BatchesSent != 0 {
				t.Fatalf("per-report mode emitted batch frames: cli %+v srv %+v", res.Net, lis.Stats())
			}
		})
	}
}
