package rattd

import (
	"testing"

	"saferatt/internal/transport"
)

// TestE2ELoopbackFleet is the acceptance end-to-end: a daemon on a real
// UDP loopback socket serving a fleet of concurrent provers, each
// completing a SMART challenge/response round and an ERASMUS
// collection, with 5% datagram loss injected on BOTH sides so the
// retry/backoff machinery is load-bearing. Zero verification failures
// allowed; round-trip latency percentiles are reported.
func TestE2ELoopbackFleet(t *testing.T) {
	provers := 1000
	if testing.Short() {
		provers = 100
	}
	image := GoldenImage(42, testMem, testBlock)
	lis, err := transport.Listen(transport.NetConfig{DropRate: 0.05, DropSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srv, err := Serve(lis, Config{Ref: image, BlockSize: testBlock})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := RunFleet(FleetConfig{
		Addr:      lis.Addr().String(),
		Provers:   provers,
		Image:     image,
		BlockSize: testBlock,
		Net:       transport.NetConfig{DropRate: 0.05, DropSeed: 12},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SMARTOK != provers || res.CollectOK != provers || res.Failures() != 0 {
		t.Fatalf("fleet failures: %+v (daemon counts %+v)", res, srv.Counts())
	}
	t.Logf("fleet %d provers: SMART p50=%v p99=%v max=%v", provers, res.P50, res.P99, res.Max)
	t.Logf("client net: %+v", res.Net)
	t.Logf("daemon batch: %+v", srv.BatchStats())
	if res.Net.Injected == 0 {
		t.Fatal("injected loss never fired; e2e did not exercise retries")
	}
	// Amortization sanity: the shared-nonce collection epochs must have
	// been computed once each, not once per prover.
	bs := srv.BatchStats()
	if bs.Computed >= bs.Reports {
		t.Fatalf("batch fast path never amortized: %+v", bs)
	}
}
