package rattd

// Bounded ERASMUS replay protection. The daemon used to remember every
// accepted measurement counter per prover in a map[uint64]bool — exact,
// but O(reports) memory forever, which makes a million-prover fleet
// ingesting measurements for months infeasible. DedupWindow replaces it
// with the classic anti-replay shape (IPsec/DTLS sliding window): a
// high watermark plus a fixed bitmap over the counters trailing it.
//
// Semantics: a counter is "seen" if its bit is set, or if it has fallen
// off the back of the window (more than DedupBits behind the highest
// accepted counter). The second clause is the one deliberate
// sharpening versus the exact map — a counter that old is rejected as
// a replay even if it was in fact never accepted. ERASMUS provers
// advance their counter monotonically (§3.3), so an honest report can
// only trail the watermark by the collection depth (2–8 in every
// experiment), never by hundreds; anything further behind is an
// attacker replaying history or a device so far desynchronized that
// re-enrollment is the right answer anyway. In exchange, per-prover
// freshness state becomes O(1): one uint64 plus DedupWords words,
// regardless of how many reports the prover ever filed.
type DedupWindow struct {
	// Top is the highest accepted counter (the watermark).
	Top uint64
	// Bits is a ring bitmap over the counters (Top-DedupBits, Top],
	// indexed by counter mod DedupBits. Positions outside that range
	// are kept zero (the canonical form the checkpoint codec relies
	// on for equal-state ⇒ equal-bytes).
	Bits [DedupWords]uint64
}

const (
	// DedupWords sizes the window bitmap; DedupBits counters are
	// tracked exactly behind the watermark.
	DedupWords = 4
	DedupBits  = DedupWords * 64
)

func dedupBitOf(c uint64) (int, uint64) {
	i := c % DedupBits
	return int(i >> 6), 1 << (i & 63)
}

// Seen reports whether counter c would be rejected as a replay.
func (w *DedupWindow) Seen(c uint64) bool {
	if c > w.Top {
		return false
	}
	if w.Top-c >= DedupBits {
		return true // fell off the back of the window
	}
	word, bit := dedupBitOf(c)
	return w.Bits[word]&bit != 0
}

// Add consumes counter c, returning false if it was already seen (the
// replay case — the window is unchanged). Counters above the watermark
// slide the window forward, zeroing the positions that enter it.
func (w *DedupWindow) Add(c uint64) bool {
	if c > w.Top {
		if c-w.Top >= DedupBits {
			w.Bits = [DedupWords]uint64{}
		} else {
			for x := w.Top + 1; x < c; x++ {
				word, bit := dedupBitOf(x)
				w.Bits[word] &^= bit
			}
		}
		word, bit := dedupBitOf(c)
		w.Bits[word] |= bit
		w.Top = c
		return true
	}
	if w.Seen(c) {
		return false
	}
	word, bit := dedupBitOf(c)
	w.Bits[word] |= bit
	return true
}

// Count returns how many counters the window currently tracks as seen
// inside its exact range (the watermark's implicit tail is not
// counted) — the v2 analogue of len(seen-counter set), used by
// diagnostics and tests.
func (w *DedupWindow) Count() int {
	n := 0
	for _, word := range w.Bits {
		for ; word != 0; word &= word - 1 {
			n++
		}
	}
	return n
}

// Counters returns the exactly-tracked seen counters in ascending
// order (diagnostics; the implicit below-window tail is not
// materialized).
func (w *DedupWindow) Counters() []uint64 {
	var out []uint64
	lo := uint64(0)
	if w.Top >= DedupBits {
		lo = w.Top - DedupBits + 1
	}
	for c := lo; ; c++ {
		word, bit := dedupBitOf(c)
		if w.Bits[word]&bit != 0 {
			out = append(out, c)
		}
		if c == w.Top { // inclusive bound; also guards uint64 wrap
			break
		}
	}
	return out
}
