package mem

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"saferatt/internal/sim"
)

func newTestMem(t *testing.T) *Memory {
	t.Helper()
	return New(Config{Size: 1024, BlockSize: 64, ROMBlocks: 2, LogWrites: true})
}

func TestNewLayout(t *testing.T) {
	m := newTestMem(t)
	if m.Size() != 1024 || m.BlockSize() != 64 || m.NumBlocks() != 16 || m.ROMBlocks() != 2 {
		t.Fatalf("layout: size=%d bs=%d n=%d rom=%d", m.Size(), m.BlockSize(), m.NumBlocks(), m.ROMBlocks())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	cases := []Config{
		{Size: 100, BlockSize: 0},
		{Size: 0, BlockSize: 64},
		{Size: 100, BlockSize: 64}, // not a multiple
		{Size: 128, BlockSize: 64, ROMBlocks: 3},
		{Size: 128, BlockSize: 64, ROMBlocks: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := newTestMem(t)
	p := []byte("hello, attestable world")
	if err := m.Write(200, p); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(p))
	if err := m.Read(200, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatalf("read back %q, want %q", got, p)
	}
}

func TestWriteROMDenied(t *testing.T) {
	m := newTestMem(t)
	err := m.Write(10, []byte{1})
	var re *ROMError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ROMError", err)
	}
	if m.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", m.Faults())
	}
}

func TestWriteLockedDenied(t *testing.T) {
	m := newTestMem(t)
	m.Lock(5)
	err := m.Write(5*64+3, []byte{1, 2})
	var le *LockError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LockError", err)
	}
	if le.Block != 5 {
		t.Fatalf("LockError.Block = %d, want 5", le.Block)
	}
	m.Unlock(5)
	if err := m.Write(5*64+3, []byte{1, 2}); err != nil {
		t.Fatalf("after unlock: %v", err)
	}
}

func TestWriteSpanningLockedBlockIsAtomic(t *testing.T) {
	m := newTestMem(t)
	m.Lock(6)
	// Write spans blocks 5 (unlocked) and 6 (locked): nothing stored.
	off := 5*64 + 60
	err := m.Write(off, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	if err == nil {
		t.Fatal("spanning write should fail")
	}
	got := make([]byte, 8)
	_ = m.Read(off, got)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("partial write leaked into memory: %v", got)
		}
	}
}

func TestBoundsErrors(t *testing.T) {
	m := newTestMem(t)
	var be *BoundsError
	if err := m.Write(1020, []byte{1, 2, 3, 4, 5}); !errors.As(err, &be) {
		t.Fatalf("Write out of range: %v", err)
	}
	if err := m.Read(-1, make([]byte, 1)); !errors.As(err, &be) {
		t.Fatalf("Read out of range: %v", err)
	}
	if be.Error() == "" {
		t.Fatal("empty BoundsError message")
	}
}

func TestZeroLengthWriteAlwaysOK(t *testing.T) {
	m := newTestMem(t)
	m.LockAll()
	if err := m.Write(500, nil); err != nil {
		t.Fatalf("zero-length write: %v", err)
	}
}

func TestLockAllUnlockAll(t *testing.T) {
	m := newTestMem(t)
	m.LockAll()
	if got := m.LockedCount(); got != 16 {
		t.Fatalf("LockedCount after LockAll = %d, want 16", got)
	}
	m.UnlockAll()
	// ROM remains effectively locked.
	if got := m.LockedCount(); got != 2 {
		t.Fatalf("LockedCount after UnlockAll = %d, want 2 (ROM)", got)
	}
	if !m.Locked(0) || !m.Locked(1) {
		t.Fatal("ROM blocks must always report locked")
	}
	if m.Locked(2) {
		t.Fatal("block 2 should be unlocked")
	}
	if !m.Writable(2) || m.Writable(0) {
		t.Fatal("Writable inconsistent with Locked")
	}
}

func TestReadsNeverBlocked(t *testing.T) {
	m := newTestMem(t)
	m.LockAll()
	if err := m.Read(0, make([]byte, 1024)); err != nil {
		t.Fatalf("read of fully locked memory: %v", err)
	}
}

func TestLastWriteTimestamps(t *testing.T) {
	now := sim.Time(0)
	m := New(Config{Size: 256, BlockSize: 64, Clock: func() sim.Time { return now }})
	now = 100
	if err := m.Write(70, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if m.LastWrite(1) != 100 {
		t.Fatalf("LastWrite(1) = %v, want 100", m.LastWrite(1))
	}
	if m.LastWrite(0) != 0 {
		t.Fatalf("LastWrite(0) = %v, want 0", m.LastWrite(0))
	}
}

func TestWriteLog(t *testing.T) {
	now := sim.Time(5)
	m := New(Config{Size: 256, BlockSize: 64, Clock: func() sim.Time { return now }, LogWrites: true})
	_ = m.Write(0, []byte{1, 2})
	now = 9
	_ = m.Write(130, []byte{3})
	log := m.WriteLog()
	if len(log) != 2 {
		t.Fatalf("log has %d entries, want 2", len(log))
	}
	if log[0].At != 5 || log[0].Block != 0 || log[0].Len != 2 {
		t.Fatalf("log[0] = %+v", log[0])
	}
	if log[1].At != 9 || log[1].Block != 2 {
		t.Fatalf("log[1] = %+v", log[1])
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := newTestMem(t)
	rng := rand.New(rand.NewPCG(1, 2))
	m.FillRandom(rng)
	snap := m.Snapshot()
	_ = m.Write(500, []byte{0xFF, 0xFF})
	if bytes.Equal(snap, m.Snapshot()) {
		t.Fatal("write did not change memory")
	}
	m.Restore(snap)
	if !bytes.Equal(snap, m.Snapshot()) {
		t.Fatal("restore did not bring memory back")
	}
}

func TestRestorePanicsOnSizeMismatch(t *testing.T) {
	m := newTestMem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Restore(make([]byte, 10))
}

func TestFillRandomSkipsROM(t *testing.T) {
	m := newTestMem(t)
	m.FillRandom(rand.New(rand.NewPCG(7, 7)))
	rom := make([]byte, 128)
	_ = m.Read(0, rom)
	for _, b := range rom {
		if b != 0 {
			t.Fatal("FillRandom touched ROM")
		}
	}
}

func TestBlockViewAndBlockOf(t *testing.T) {
	m := newTestMem(t)
	_ = m.Write(3*64, bytes.Repeat([]byte{0xAB}, 64))
	b := m.Block(3)
	if len(b) != 64 || b[0] != 0xAB {
		t.Fatalf("Block(3) = len %d first %x", len(b), b[0])
	}
	if m.BlockOf(3*64+63) != 3 || m.BlockOf(4*64) != 4 {
		t.Fatal("BlockOf arithmetic wrong")
	}
}

func TestCheckBlockPanics(t *testing.T) {
	m := newTestMem(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Block(16)
}

func TestResetFaults(t *testing.T) {
	m := newTestMem(t)
	m.Lock(4)
	_ = m.Write(4*64, []byte{1})
	_ = m.Write(4*64, []byte{1})
	if got := m.ResetFaults(); got != 2 {
		t.Fatalf("ResetFaults returned %d, want 2", got)
	}
	if m.Faults() != 0 {
		t.Fatal("faults not reset")
	}
}

// Property: a write either fully succeeds (all bytes land, timestamps
// advance) or fully fails (no byte changes). Never partial.
func TestPropertyWriteAtomicity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m := New(Config{Size: 1024, BlockSize: 64, ROMBlocks: 1, LogWrites: false})
		// Random lock pattern.
		for i := 1; i < 16; i++ {
			if rng.IntN(2) == 0 {
				m.Lock(i)
			}
		}
		before := m.Snapshot()
		off := rng.IntN(1024)
		n := rng.IntN(200)
		if off+n > 1024 {
			n = 1024 - off
		}
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(rng.Uint32()) | 1 // never zero, so changes are visible
		}
		err := m.Write(off, p)
		after := m.Snapshot()
		if err != nil {
			return bytes.Equal(before, after)
		}
		// Success: exactly [off,off+n) changed to p.
		if !bytes.Equal(after[off:off+n], p) {
			return false
		}
		if !bytes.Equal(after[:off], before[:off]) || !bytes.Equal(after[off+n:], before[off+n:]) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LockedCount equals the number of blocks for which Locked
// reports true, for random lock/unlock sequences.
func TestPropertyLockedCount(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		m := New(Config{Size: 2048, BlockSize: 64, ROMBlocks: 3})
		for i := 0; i < 100; i++ {
			b := rng.IntN(m.NumBlocks())
			if rng.IntN(2) == 0 {
				m.Lock(b)
			} else {
				m.Unlock(b)
			}
		}
		n := 0
		for i := 0; i < m.NumBlocks(); i++ {
			if m.Locked(i) {
				n++
			}
		}
		return n == m.LockedCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
