// Package mem models the attestable memory of a simple IoT prover.
//
// Memory is block structured: attestation mechanisms measure, lock and
// release whole blocks, and the paper's lock policies (All-Lock,
// Dec-Lock, Inc-Lock, ...) are expressed as per-block read-only locks
// enforced by an MPU-like check on every write. A designated ROM region
// holds the attestation code and key and is never writable by software,
// mirroring SMART's hard-wired access-control rules.
//
// Every successful write is timestamped (and optionally logged), which
// is what lets the verifier side reason about temporal consistency: a
// measurement is consistent with memory at instant t iff no block was
// written between the instant it was covered and t (paper §3.1, Fig. 4).
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"saferatt/internal/sim"
)

// LockError reports a write denied by a block lock.
type LockError struct {
	Block int
	Off   int
}

func (e *LockError) Error() string {
	return fmt.Sprintf("mem: write to offset %d denied: block %d is locked", e.Off, e.Block)
}

// ROMError reports a write into the read-only ROM region.
type ROMError struct {
	Off int
}

func (e *ROMError) Error() string {
	return fmt.Sprintf("mem: write to offset %d denied: ROM region", e.Off)
}

// BoundsError reports an out-of-range access.
type BoundsError struct {
	Off, Len, Size int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("mem: access [%d,%d) out of range [0,%d)", e.Off, e.Off+e.Len, e.Size)
}

// Write is one entry of the write log.
type Write struct {
	At    sim.Time
	Block int
	Off   int
	Len   int
}

// Memory is block-structured attestable memory with MPU-style per-block
// write locks.
//
// A Memory has one of two backings. A flat Memory (New) owns a private
// byte array. A shared Memory (NewShared) reads through an immutable
// Golden image and materializes a private copy of a block only when the
// block is first written — copy-on-write, so a fleet of devices
// provisioned from one image costs O(dirty blocks) private bytes per
// device instead of O(image). Lock, timestamp, fault and generation
// semantics are identical in both modes.
//
// The per-block bookkeeping arrays (priv, locked, lastWrite, gen) are
// allocated lazily on first use: a never-written, never-locked device —
// the common case in a large healthy fleet — carries only this struct.
// Nil arrays read as all-zero.
type Memory struct {
	data      []byte // flat backing; nil in copy-on-write mode
	golden    *Golden
	priv      [][]byte // COW mode: materialized per-block copies; lazy
	dirty     int      // COW mode: number of materialized blocks
	size      int
	blockSize int
	nblocks   int
	locked    []bool     // lazy
	lastWrite []sim.Time // lazy
	gen       []uint64   // per-block content generation (see Generation); lazy
	romBlocks int        // blocks [0, romBlocks) are ROM
	log       []Write
	logOn     bool
	logLimit  int
	logHead   int // ring start when logLimit > 0 and the log is full
	dropped   int
	faults    int
	clock     func() sim.Time
	guard     func(firstBlock, lastBlock int) error
}

func (m *Memory) ensureLocked() []bool {
	if m.locked == nil {
		m.locked = make([]bool, m.nblocks)
	}
	return m.locked
}

func (m *Memory) ensureLastWrite() []sim.Time {
	if m.lastWrite == nil {
		m.lastWrite = make([]sim.Time, m.nblocks)
	}
	return m.lastWrite
}

func (m *Memory) ensureGen() []uint64 {
	if m.gen == nil {
		m.gen = make([]uint64, m.nblocks)
	}
	return m.gen
}

// Config describes a Memory layout.
type Config struct {
	// Size is the total byte size. Must be a positive multiple of
	// BlockSize.
	Size int
	// BlockSize is the lock/measurement granularity in bytes.
	BlockSize int
	// ROMBlocks is the number of leading blocks reserved as ROM
	// (attestation code + key). May be zero.
	ROMBlocks int
	// Clock supplies timestamps for writes. If nil, all writes are
	// stamped at time 0.
	Clock func() sim.Time
	// LogWrites enables the write log used for consistency analysis.
	// Leave it off for Monte Carlo sweeps: an unbounded log grows for
	// the lifetime of the Memory and costs an append per write.
	LogWrites bool
	// LogLimit bounds the write log to the most recent N entries when
	// positive (older entries are dropped and counted — see
	// DroppedWrites). 0 keeps the historical unbounded behavior.
	// Ignored unless LogWrites is set.
	LogLimit int
}

// New builds a zeroed Memory. It panics on a malformed Config, since a
// bad layout is a programming error in an experiment definition.
func New(cfg Config) *Memory {
	if cfg.BlockSize <= 0 {
		panic("mem: BlockSize must be positive")
	}
	if cfg.Size <= 0 || cfg.Size%cfg.BlockSize != 0 {
		panic(fmt.Sprintf("mem: Size %d must be a positive multiple of BlockSize %d", cfg.Size, cfg.BlockSize))
	}
	n := cfg.Size / cfg.BlockSize
	if cfg.ROMBlocks < 0 || cfg.ROMBlocks > n {
		panic("mem: ROMBlocks out of range")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	if cfg.LogLimit < 0 {
		panic("mem: negative LogLimit")
	}
	return &Memory{
		data:      make([]byte, cfg.Size),
		size:      cfg.Size,
		blockSize: cfg.BlockSize,
		nblocks:   n,
		romBlocks: cfg.ROMBlocks,
		logOn:     cfg.LogWrites,
		logLimit:  cfg.LogLimit,
		clock:     clock,
	}
}

// Size returns the total byte size.
func (m *Memory) Size() int { return m.size }

// BlockSize returns the block granularity in bytes.
func (m *Memory) BlockSize() int { return m.blockSize }

// NumBlocks returns the number of blocks.
func (m *Memory) NumBlocks() int { return m.nblocks }

// ROMBlocks returns the number of leading read-only ROM blocks.
func (m *Memory) ROMBlocks() int { return m.romBlocks }

// BlockOf returns the block index containing byte offset off.
func (m *Memory) BlockOf(off int) int { return off / m.blockSize }

// Block returns a read-only view of block i. Callers must not mutate
// the returned slice; use WriteBlock for mutation so locks and
// timestamps are honored.
func (m *Memory) Block(i int) []byte {
	m.checkBlock(i)
	return m.blockRead(i)
}

// blockRead returns block i's current content without bounds checking:
// the private array in flat mode, the materialized copy or the golden
// block in copy-on-write mode.
func (m *Memory) blockRead(i int) []byte {
	if m.data != nil {
		return m.data[i*m.blockSize : (i+1)*m.blockSize]
	}
	if m.priv != nil {
		if p := m.priv[i]; p != nil {
			return p
		}
	}
	return m.golden.Block(i)
}

// Read copies len(dst) bytes starting at off into dst. Reads are never
// blocked by locks (locks are read-only locks).
func (m *Memory) Read(off int, dst []byte) error {
	if off < 0 || off+len(dst) > m.size {
		return &BoundsError{Off: off, Len: len(dst), Size: m.size}
	}
	if m.data != nil {
		copy(dst, m.data[off:])
		return nil
	}
	for n := 0; n < len(dst); {
		b := (off + n) / m.blockSize
		in := (off + n) % m.blockSize
		n += copy(dst[n:], m.blockRead(b)[in:])
	}
	return nil
}

// Write copies p into memory at off. It fails with *ROMError or
// *LockError if any touched block is ROM or locked; a failed write
// modifies nothing (writes are checked before any byte is stored) and
// increments the fault counter.
func (m *Memory) Write(off int, p []byte) error {
	if off < 0 || off+len(p) > m.size {
		return &BoundsError{Off: off, Len: len(p), Size: m.size}
	}
	if len(p) == 0 {
		return nil
	}
	first, last := m.BlockOf(off), m.BlockOf(off+len(p)-1)
	if m.guard != nil {
		if err := m.guard(first, last); err != nil {
			m.faults++
			return err
		}
	}
	for b := first; b <= last; b++ {
		if b < m.romBlocks {
			m.faults++
			return &ROMError{Off: off}
		}
		if m.locked != nil && m.locked[b] {
			m.faults++
			return &LockError{Block: b, Off: off}
		}
	}
	m.store(off, p)
	now := m.clock()
	lw, gen := m.ensureLastWrite(), m.ensureGen()
	for b := first; b <= last; b++ {
		lw[b] = now
		gen[b]++
	}
	if m.logOn {
		m.logAppend(Write{At: now, Block: first, Off: off, Len: len(p)})
	}
	return nil
}

// logAppend records one write, honoring the retention limit: once the
// log holds logLimit entries it becomes a ring and the oldest entry is
// dropped (and counted) per new write.
func (m *Memory) logAppend(w Write) {
	if m.logLimit <= 0 || len(m.log) < m.logLimit {
		m.log = append(m.log, w)
		return
	}
	m.log[m.logHead] = w
	m.logHead = (m.logHead + 1) % m.logLimit
	m.dropped++
}

// store writes p at off, bypassing locks and bookkeeping (callers have
// already checked bounds and permissions). In copy-on-write mode every
// touched block is materialized first.
func (m *Memory) store(off int, p []byte) {
	if m.data != nil {
		copy(m.data[off:], p)
		return
	}
	for n := 0; n < len(p); {
		b := (off + n) / m.blockSize
		in := (off + n) % m.blockSize
		n += copy(m.materialize(b)[in:], p[n:])
	}
}

// materialize gives block b a private copy of its golden content and
// returns it; a no-op for already-private blocks.
func (m *Memory) materialize(b int) []byte {
	if m.priv == nil {
		m.priv = make([][]byte, m.nblocks)
	}
	if p := m.priv[b]; p != nil {
		return p
	}
	p := make([]byte, m.blockSize)
	copy(p, m.golden.Block(b))
	m.priv[b] = p
	m.dirty++
	return p
}

// WriteBlock overwrites block i with p (which must be exactly one block
// long).
func (m *Memory) WriteBlock(i int, p []byte) error {
	m.checkBlock(i)
	if len(p) != m.blockSize {
		return fmt.Errorf("mem: WriteBlock: got %d bytes, want %d", len(p), m.blockSize)
	}
	return m.Write(i*m.blockSize, p)
}

// Poke stores a single byte at off, honoring locks.
func (m *Memory) Poke(off int, v byte) error {
	return m.Write(off, []byte{v})
}

// Lock makes block i read-only. Locking ROM or an already-locked block
// is a no-op.
func (m *Memory) Lock(i int) {
	m.checkBlock(i)
	m.ensureLocked()[i] = true
}

// Unlock releases the lock on block i. ROM blocks stay read-only
// regardless.
func (m *Memory) Unlock(i int) {
	m.checkBlock(i)
	if m.locked != nil {
		m.locked[i] = false
	}
}

// LockAll locks every block.
func (m *Memory) LockAll() {
	locked := m.ensureLocked()
	for i := range locked {
		locked[i] = true
	}
}

// UnlockAll releases every lock.
func (m *Memory) UnlockAll() {
	for i := range m.locked {
		m.locked[i] = false
	}
}

// Locked reports whether block i is locked (ROM blocks report true).
func (m *Memory) Locked(i int) bool {
	m.checkBlock(i)
	return i < m.romBlocks || (m.locked != nil && m.locked[i])
}

// LockedCount returns the number of blocks currently write-protected,
// including ROM.
func (m *Memory) LockedCount() int {
	n := m.romBlocks
	if m.locked == nil {
		return n
	}
	for i := m.romBlocks; i < m.nblocks; i++ {
		if m.locked[i] {
			n++
		}
	}
	return n
}

// Writable reports whether block i accepts writes right now.
func (m *Memory) Writable(i int) bool { return !m.Locked(i) }

// LastWrite returns the timestamp of the most recent successful write
// touching block i (zero if never written).
func (m *Memory) LastWrite(i int) sim.Time {
	m.checkBlock(i)
	if m.lastWrite == nil {
		return 0
	}
	return m.lastWrite[i]
}

// Faults returns the number of writes denied by locks or ROM protection.
// This is the paper's "writable memory availability" cost made concrete:
// every fault is a legitimate (or malicious) write the device could not
// perform.
func (m *Memory) Faults() int { return m.faults }

// ResetFaults zeroes the fault counter and returns the previous value.
func (m *Memory) ResetFaults() int {
	f := m.faults
	m.faults = 0
	return f
}

// WriteLog returns the log of successful writes in chronological order
// (nil unless LogWrites was set). With a LogLimit in effect only the
// most recent entries are retained; DroppedWrites counts the rest.
func (m *Memory) WriteLog() []Write {
	if m.logHead == 0 {
		return m.log
	}
	out := make([]Write, 0, len(m.log))
	out = append(out, m.log[m.logHead:]...)
	return append(out, m.log[:m.logHead]...)
}

// DroppedWrites returns the number of write-log entries discarded to
// honor the configured LogLimit.
func (m *Memory) DroppedWrites() int { return m.dropped }

// Generation returns the content generation of block i: the number of
// mutations (successful writes, restores, random fills) that have
// touched it. Digest caches key on it — any mutation path must bump it,
// or a stale cached digest could mask malware.
func (m *Memory) Generation(i int) uint64 {
	m.checkBlock(i)
	if m.gen == nil {
		return 0
	}
	return m.gen[i]
}

// Snapshot returns a copy of the full memory contents.
func (m *Memory) Snapshot() []byte { return m.SnapshotInto(nil) }

// SnapshotInto copies the full memory contents into dst's capacity and
// returns the (resized) slice, allocating only when dst is too small.
// Hot callers that snapshot per round hand back the previous round's
// buffer; Snapshot is SnapshotInto(nil).
func (m *Memory) SnapshotInto(dst []byte) []byte {
	if cap(dst) >= m.size {
		dst = dst[:m.size]
	} else {
		dst = make([]byte, m.size)
	}
	if m.data != nil {
		copy(dst, m.data)
		return dst
	}
	for b := 0; b < m.nblocks; b++ {
		copy(dst[b*m.blockSize:], m.blockRead(b))
	}
	return dst
}

// Restore overwrites memory contents from a snapshot, bypassing locks.
// It models out-of-band re-provisioning by the verifier (paper §1:
// "software can be re-set or rolled back") and is not reachable from
// simulated software. In copy-on-write mode a block restored to its
// golden content is dematerialized: re-provisioning a device back to
// the fleet image returns it to O(0) private bytes.
func (m *Memory) Restore(s []byte) {
	if len(s) != m.size {
		panic(fmt.Sprintf("mem: Restore: snapshot %d bytes, memory %d", len(s), m.size))
	}
	if m.data != nil {
		copy(m.data, s)
	} else {
		for b := 0; b < m.nblocks; b++ {
			want := s[b*m.blockSize : (b+1)*m.blockSize]
			if bytes.Equal(want, m.golden.Block(b)) {
				if m.priv != nil && m.priv[b] != nil {
					m.priv[b] = nil
					m.dirty--
				}
				continue
			}
			copy(m.materialize(b), want)
		}
	}
	// Every block's content may have changed: bump all generations so
	// cached digests of the pre-restore content are invalidated.
	gen := m.ensureGen()
	for b := range gen {
		gen[b]++
	}
}

// FillRandom fills all non-ROM memory with deterministic pseudorandom
// content drawn from rng, bypassing locks. Used to provision benign
// device state. It draws one Uint64 per 8 bytes: per-byte generator
// calls used to dominate world construction in Monte Carlo profiles.
func (m *Memory) FillRandom(rng *rand.Rand) {
	start := m.romBlocks * m.blockSize
	i := start
	if m.data != nil {
		for ; i+8 <= m.size; i += 8 {
			binary.LittleEndian.PutUint64(m.data[i:], rng.Uint64())
		}
		for ; i < m.size; i++ {
			m.data[i] = byte(rng.Uint32())
		}
	} else {
		// COW mode: materialize and fill, drawing in exactly the flat
		// order so content is backing-independent for a given seed.
		// (Provision the golden image instead where possible — filling
		// defeats sharing.)
		var w [8]byte
		for ; i+8 <= m.size; i += 8 {
			binary.LittleEndian.PutUint64(w[:], rng.Uint64())
			m.store(i, w[:])
		}
		for ; i < m.size; i++ {
			w[0] = byte(rng.Uint32())
			m.store(i, w[:1])
		}
	}
	gen := m.ensureGen()
	for b := m.romBlocks; b < m.nblocks; b++ {
		gen[b]++
	}
}

// SetGuard installs an access-control hook consulted on every write
// (before ROM and lock checks). A nil guard removes the hook. The
// device layer uses this to model OS-enforced process isolation
// (TyTAN/HYDRA designs); a guard rejection counts as a fault and the
// returned error surfaces to the writer.
func (m *Memory) SetGuard(g func(firstBlock, lastBlock int) error) { m.guard = g }

// Raw returns the raw flat backing store; used by attestation ROM code
// (hashing reads) without copying. A copy-on-write Memory is flattened
// first: the full image is materialized into a private array and the
// golden link severed, so sharing is lost — swarm-scale paths read
// through Block instead.
func (m *Memory) Raw() []byte {
	if m.data == nil {
		m.flatten()
	}
	return m.data
}

// flatten converts a copy-on-write Memory to a flat one with identical
// content, locks, timestamps and generations.
func (m *Memory) flatten() {
	flat := make([]byte, m.size)
	for b := 0; b < m.nblocks; b++ {
		copy(flat[b*m.blockSize:], m.blockRead(b))
	}
	m.data = flat
	m.golden = nil
	m.priv = nil
	m.dirty = 0
}

// DirtyBlocks returns the number of blocks holding private
// (materialized) copies — the per-device memory cost of a copy-on-write
// Memory beyond its shared golden image. Flat memories report 0.
func (m *Memory) DirtyBlocks() int { return m.dirty }

// SharedGolden returns the golden image a copy-on-write Memory reads
// through, or nil for a flat Memory. Verifier-side code uses it to
// intern one golden reference (and one digest cache) per fleet instead
// of one per device.
func (m *Memory) SharedGolden() *Golden { return m.golden }

// BlockClean reports whether block i is still read through the shared
// golden image — i.e. its content is bit-identical to the golden block.
// Always false for flat memories. Digest caches use it to serve clean
// blocks from a fleet-wide golden cache.
func (m *Memory) BlockClean(i int) bool {
	m.checkBlock(i)
	return m.golden != nil && (m.priv == nil || m.priv[i] == nil)
}

// ApplyGolden installs newG's content as an in-place OTA update:
// every block whose current content differs from newG is written
// through WriteBlock (honoring locks, stamping writes, bumping
// generations, exactly like any other mutation — digest caches
// invalidate normally). Blocks already matching newG are untouched,
// so a device whose image was clean pays only for the blocks the
// update actually changed. Returns the number of blocks written; a
// locked differing block aborts with an error (a device cannot flash
// what its lock policy forbids). The device's golden pointer is NOT
// rewired: after a full apply the content equals newG bit for bit,
// which is what attestation measures.
func (m *Memory) ApplyGolden(newG *Golden) (int, error) {
	if newG == nil {
		return 0, fmt.Errorf("mem: ApplyGolden with nil Golden")
	}
	if newG.blockSize != m.blockSize || newG.nblocks != m.nblocks {
		return 0, fmt.Errorf("mem: ApplyGolden geometry mismatch: image %dx%d vs memory %dx%d",
			newG.nblocks, newG.blockSize, m.nblocks, m.blockSize)
	}
	changed := 0
	for i := 0; i < m.nblocks; i++ {
		if bytes.Equal(m.blockRead(i), newG.Block(i)) {
			continue
		}
		if err := m.WriteBlock(i, newG.Block(i)); err != nil {
			return changed, fmt.Errorf("mem: ApplyGolden block %d: %w", i, err)
		}
		changed++
	}
	return changed, nil
}

func (m *Memory) checkBlock(i int) {
	if i < 0 || i >= m.nblocks {
		panic(fmt.Sprintf("mem: block %d out of range [0,%d)", i, m.nblocks))
	}
}
