package mem

import (
	"testing"

	"saferatt/internal/sim"
)

// buildCoverage covers blocks 0..n-1 sequentially at times start,
// start+step, ...
func buildCoverage(n int, start sim.Time, step sim.Duration) *Coverage {
	c := NewCoverage(n)
	for i := 0; i < n; i++ {
		c.CoveredAt[i] = start.Add(sim.Duration(i) * step)
	}
	return c
}

func TestConsistentNoWrites(t *testing.T) {
	c := buildCoverage(4, 100, 10)
	if !ConsistentAt(nil, c, 500) {
		t.Fatal("no writes should always be consistent")
	}
}

// Paper Fig. 4: write at A (before t_s) or D (after t_r) never breaks
// consistency; a write at B or C (inside the computation) breaks
// consistency with times on the far side of the write.
func TestFigure4Semantics(t *testing.T) {
	// Blocks covered at t=100,110,120,130 (t_s=100, t_e=130).
	c := buildCoverage(4, 100, 10)

	// A: write to block 2 before t_s.
	logA := []Write{{At: 50, Block: 2}}
	if !ConsistentAt(logA, c, 130) {
		t.Error("write at A (before t_s) must not break consistency at t_e")
	}

	// D: write to block 2 after the probe time.
	logD := []Write{{At: 500, Block: 2}}
	if !ConsistentAt(logD, c, 130) {
		t.Error("write at D (after t_e) must not break consistency at t_e")
	}

	// B: block 2 written at t=105, covered at t=120. The measurement
	// saw the post-write value, so it is consistent with memory at
	// t >= 120 but NOT with memory at t_s=100.
	logB := []Write{{At: 105, Block: 2}}
	if ConsistentAt(logB, c, 100) {
		t.Error("write at B must break consistency with t_s")
	}
	// Covered at 120, write at 105 < 120; probing at 130: interval
	// (120,130) contains no write -> consistent.
	if !ConsistentAt(logB, c, 130) {
		t.Error("write at B must not break consistency with t_e")
	}

	// C: block 1 covered at t=110, then written at t=115. Measurement
	// reflects the pre-write value: consistent with t<=115's early side
	// (t in [?,115)) but not with t_e.
	logC := []Write{{At: 115, Block: 1}}
	if ConsistentAt(logC, c, 130) {
		t.Error("write at C must break consistency with t_e")
	}
	if !ConsistentAt(logC, c, 110) {
		t.Error("write at C must not break consistency with the cover instant")
	}
}

func TestUncoveredBlocksIgnored(t *testing.T) {
	c := NewCoverage(4)
	c.CoveredAt[0] = 100
	// Block 3 never covered; writes to it are irrelevant.
	log := []Write{{At: 105, Block: 3}}
	if !ConsistentAt(log, c, 200) {
		t.Fatal("write to uncovered block must not break consistency")
	}
	if c.Covered(3) {
		t.Fatal("Covered(3) should be false")
	}
	if !c.Covered(0) {
		t.Fatal("Covered(0) should be true")
	}
}

func TestBoundaryWritesDoNotBreak(t *testing.T) {
	c := buildCoverage(2, 100, 10)
	// Write exactly at the cover instant or exactly at probe instant:
	// boundary, not strictly inside -> consistent by our convention.
	log := []Write{{At: 100, Block: 0}, {At: 200, Block: 1}}
	if !ConsistentAt(log, c, 200) {
		t.Fatal("boundary writes must not break consistency")
	}
}

func TestConsistencyWindow(t *testing.T) {
	c := buildCoverage(2, 100, 10) // covered at 100 and 110
	log := []Write{{At: 105, Block: 1}}
	// Block 1 covered at 110, written at 105 (before coverage).
	// Probes: 90 -> interval (90,110) contains 105: inconsistent.
	//         107 -> (107,110) does not contain 105: consistent.
	//         120 -> (110,120): consistent.
	got := ConsistencyWindow(log, c, []sim.Time{90, 107, 120})
	want := []bool{false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
}

func TestAllLockWindowIsWholeInterval(t *testing.T) {
	// All-Lock: no writes possible during [t_s,t_e]; any write lands
	// before t_s or after release. Consistency must hold across the
	// whole computation interval.
	c := buildCoverage(8, 1000, 5) // t_s=1000, t_e=1035
	log := []Write{{At: 900, Block: 3}, {At: 2000, Block: 5}}
	for probe := sim.Time(1000); probe <= 1035; probe += 5 {
		if !ConsistentAt(log, c, probe) {
			t.Fatalf("All-Lock style log inconsistent at %v", probe)
		}
	}
}
