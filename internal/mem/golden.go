package mem

import (
	"bytes"
	"fmt"
	"math/rand/v2"

	"saferatt/internal/sim"
)

// Golden is an immutable, shareable memory image: the common software
// load a fleet of identical devices is provisioned from. Any number of
// copy-on-write Memories (NewShared) read through one Golden
// concurrently; a device pays private bytes only for blocks it mutates.
//
// Immutability is the whole contract — nothing may write g.data after
// construction. NewGolden copies its input to make that easy to honor.
type Golden struct {
	data      []byte
	blockSize int
	nblocks   int
	romBlocks int
}

// NewGolden builds a golden image from data (copied). It panics on a
// malformed geometry, like New: image layouts are experiment code, not
// input.
func NewGolden(data []byte, blockSize, romBlocks int) *Golden {
	if blockSize <= 0 {
		panic("mem: Golden BlockSize must be positive")
	}
	if len(data) == 0 || len(data)%blockSize != 0 {
		panic(fmt.Sprintf("mem: Golden image of %d bytes is not a positive multiple of block size %d", len(data), blockSize))
	}
	n := len(data) / blockSize
	if romBlocks < 0 || romBlocks > n {
		panic("mem: Golden ROMBlocks out of range")
	}
	return &Golden{
		data:      append([]byte(nil), data...),
		blockSize: blockSize,
		nblocks:   n,
		romBlocks: romBlocks,
	}
}

// GoldenFromMemory seals a snapshot of m's current content as a golden
// image with the same geometry. Typical fleet construction: build one
// flat Memory, provision it (FillRandom, service install), seal it, and
// hand the Golden to NewShared once per device.
func GoldenFromMemory(m *Memory) *Golden {
	g := &Golden{
		data:      m.Snapshot(),
		blockSize: m.blockSize,
		nblocks:   m.nblocks,
		romBlocks: m.romBlocks,
	}
	return g
}

// RandomGolden builds a golden image with deterministic pseudorandom
// non-ROM content — the fleet-provisioning analogue of
// (*Memory).FillRandom, drawing in the same order so a shared image
// equals a per-device fill with the same seed.
func RandomGolden(size, blockSize, romBlocks int, rng *rand.Rand) *Golden {
	scratch := New(Config{Size: size, BlockSize: blockSize, ROMBlocks: romBlocks})
	scratch.FillRandom(rng)
	return &Golden{
		data:      scratch.data, // scratch is discarded; safe to adopt
		blockSize: blockSize,
		nblocks:   scratch.nblocks,
		romBlocks: romBlocks,
	}
}

// Size returns the image's total byte size.
func (g *Golden) Size() int { return len(g.data) }

// BlockSize returns the block granularity in bytes.
func (g *Golden) BlockSize() int { return g.blockSize }

// NumBlocks returns the number of blocks.
func (g *Golden) NumBlocks() int { return g.nblocks }

// ROMBlocks returns the number of leading read-only ROM blocks.
func (g *Golden) ROMBlocks() int { return g.romBlocks }

// Block returns a read-only view of golden block i. Callers must not
// mutate the returned slice.
func (g *Golden) Block(i int) []byte {
	if i < 0 || i >= g.nblocks {
		panic(fmt.Sprintf("mem: golden block %d out of range [0,%d)", i, g.nblocks))
	}
	return g.data[i*g.blockSize : (i+1)*g.blockSize]
}

// Bytes returns a read-only view of the full image — the verifier-side
// reference for every device sharing this golden. Callers must not
// mutate it; copy first if a private image is needed.
func (g *Golden) Bytes() []byte { return g.data }

// DiffBlocks returns the indices of blocks whose content differs from
// old — the OTA delta between two firmware versions. A nil old, or an
// old with a different geometry, diffs against nothing: every block is
// returned (the update is a full reflash).
func (g *Golden) DiffBlocks(old *Golden) []int {
	if old == nil || old.blockSize != g.blockSize || old.nblocks != g.nblocks {
		all := make([]int, g.nblocks)
		for i := range all {
			all[i] = i
		}
		return all
	}
	var diff []int
	for i := 0; i < g.nblocks; i++ {
		if !bytes.Equal(g.Block(i), old.Block(i)) {
			diff = append(diff, i)
		}
	}
	return diff
}

// SharedConfig parameterizes a copy-on-write Memory; geometry comes
// from the Golden.
type SharedConfig struct {
	// Clock supplies timestamps for writes. If nil, all writes are
	// stamped at time 0.
	Clock func() sim.Time
	// LogWrites / LogLimit mirror Config (see there).
	LogWrites bool
	LogLimit  int
}

// NewShared builds a copy-on-write Memory over g: reads serve golden
// content until a block is first written, at which point (and only
// then) the block gets a private copy. The bookkeeping arrays are lazy
// too, so a clean device costs one struct — a 10k-device fleet
// provisions in O(fleet) structs plus one shared image. Generation
// counters start at zero and bump on every mutation, exactly as for a
// flat Memory, so per-device digest caches keep their invalidation
// contract.
func NewShared(g *Golden, cfg SharedConfig) *Memory {
	if g == nil {
		panic("mem: NewShared with nil Golden")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	if cfg.LogLimit < 0 {
		panic("mem: negative LogLimit")
	}
	return &Memory{
		golden:    g,
		size:      len(g.data),
		blockSize: g.blockSize,
		nblocks:   g.nblocks,
		romBlocks: g.romBlocks,
		logOn:     cfg.LogWrites,
		logLimit:  cfg.LogLimit,
		clock:     clock,
	}
}
