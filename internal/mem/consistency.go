package mem

import "saferatt/internal/sim"

// Coverage records when each block was read by an integrity-ensuring
// function F during one measurement. CoveredAt[i] is the instant block i
// was hashed; blocks with CoveredAt[i] < 0 were not covered.
type Coverage struct {
	CoveredAt []sim.Time
}

// NewCoverage returns a Coverage for n blocks with all entries marked
// uncovered.
func NewCoverage(n int) *Coverage {
	c := &Coverage{CoveredAt: make([]sim.Time, n)}
	for i := range c.CoveredAt {
		c.CoveredAt[i] = -1
	}
	return c
}

// Covered reports whether block i was covered.
func (c *Coverage) Covered(i int) bool { return c.CoveredAt[i] >= 0 }

// ConsistentAt reports whether a measurement with the given per-block
// coverage is temporally consistent with the memory state at instant t,
// judging from the write log (paper §3.1 / Fig. 4 semantics).
//
// The measurement reflects block i as of CoveredAt[i]. It is consistent
// with memory-at-t iff for every covered block i no successful write
// touched block i strictly inside the interval between CoveredAt[i] and
// t (in either order). Writes exactly at a boundary instant are treated
// as visible to the later of the two operations at that instant and do
// not break consistency.
func ConsistentAt(log []Write, c *Coverage, t sim.Time) bool {
	for _, w := range log {
		ct := c.CoveredAt[w.Block]
		if ct < 0 {
			continue // uncovered blocks cannot break consistency
		}
		lo, hi := ct, t
		if lo > hi {
			lo, hi = hi, lo
		}
		if w.At > lo && w.At < hi {
			return false
		}
	}
	return true
}

// ConsistencyWindow computes the maximal set of probe instants from
// candidates at which the measurement is consistent. It is a
// convenience for regenerating the paper's Figure 4 rows.
func ConsistencyWindow(log []Write, c *Coverage, candidates []sim.Time) []bool {
	out := make([]bool, len(candidates))
	for i, t := range candidates {
		out[i] = ConsistentAt(log, c, t)
	}
	return out
}
