package mem

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"saferatt/internal/sim"
)

// randomScenario builds random coverage instants and a random write
// log over n blocks.
func randomScenario(rng *rand.Rand, n int) (*Coverage, []Write) {
	c := NewCoverage(n)
	for i := 0; i < n; i++ {
		if rng.IntN(8) == 0 {
			continue // leave some blocks uncovered
		}
		c.CoveredAt[i] = sim.Time(rng.Int64N(1000))
	}
	var log []Write
	for i := 0; i < rng.IntN(30); i++ {
		log = append(log, Write{
			At:    sim.Time(rng.Int64N(1000)),
			Block: rng.IntN(n),
		})
	}
	return c, log
}

// Property: consistency at the cover instant itself always holds for a
// single-block view — a write strictly inside an empty interval is
// impossible.
func TestPropertyConsistencyAtCoverInstant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xC0))
		n := 2 + rng.IntN(16)
		c, log := randomScenario(rng, n)
		// Probe each covered block's own instant with all OTHER blocks
		// uncovered: must be consistent.
		for b := 0; b < n; b++ {
			if !c.Covered(b) {
				continue
			}
			solo := NewCoverage(n)
			solo.CoveredAt[b] = c.CoveredAt[b]
			if !ConsistentAt(log, solo, solo.CoveredAt[b]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an empty log is consistent at every probe; adding writes
// can only remove consistency, never add it (anti-monotonicity in the
// log).
func TestPropertyLogMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xC1))
		n := 2 + rng.IntN(16)
		c, log := randomScenario(rng, n)
		probes := []sim.Time{0, 250, 500, 750, 1000}
		for _, p := range probes {
			if !ConsistentAt(nil, c, p) {
				return false // empty log must always be consistent
			}
		}
		// Prefixes of the log: consistency is anti-monotone.
		for _, p := range probes {
			prev := true
			for k := 0; k <= len(log); k++ {
				cur := ConsistentAt(log[:k], c, p)
				if cur && !prev {
					return false // regained consistency by adding writes
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConsistencyWindow agrees with pointwise ConsistentAt.
func TestPropertyWindowAgreesPointwise(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xC2))
		n := 2 + rng.IntN(16)
		c, log := randomScenario(rng, n)
		var probes []sim.Time
		for i := 0; i < 10; i++ {
			probes = append(probes, sim.Time(rng.Int64N(1200)))
		}
		window := ConsistencyWindow(log, c, probes)
		for i, p := range probes {
			if window[i] != ConsistentAt(log, c, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: writes to uncovered blocks never affect consistency.
func TestPropertyUncoveredWritesIrrelevant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xC3))
		n := 4 + rng.IntN(12)
		c, log := randomScenario(rng, n)
		// Pick an uncovered block (force one).
		u := rng.IntN(n)
		c.CoveredAt[u] = -1
		probe := sim.Time(rng.Int64N(1000))
		base := ConsistentAt(log, c, probe)
		// Add many writes to the uncovered block: same verdict.
		extended := append(append([]Write(nil), log...),
			Write{At: 1, Block: u}, Write{At: 500, Block: u}, Write{At: 999, Block: u})
		return ConsistentAt(extended, c, probe) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
