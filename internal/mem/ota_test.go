package mem

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func otaGoldens(t *testing.T) (*Golden, *Golden, []int) {
	t.Helper()
	g1 := RandomGolden(4096, 256, 1, rand.New(rand.NewPCG(21, 21)))
	b2 := append([]byte(nil), g1.Bytes()...)
	// Change two non-ROM blocks.
	copy(b2[3*256:4*256], bytes.Repeat([]byte{0xAB}, 256))
	copy(b2[9*256:10*256], bytes.Repeat([]byte{0xCD}, 256))
	return g1, NewGolden(b2, 256, 1), []int{3, 9}
}

func TestGoldenDiffBlocks(t *testing.T) {
	g1, g2, want := otaGoldens(t)
	got := g2.DiffBlocks(g1)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("DiffBlocks = %v, want %v", got, want)
	}
	if d := g1.DiffBlocks(g1); d != nil {
		t.Fatalf("self-diff = %v", d)
	}
	// No old image (or a geometry mismatch) means a full reflash.
	if d := g2.DiffBlocks(nil); len(d) != g2.NumBlocks() {
		t.Fatalf("nil diff covers %d blocks, want %d", len(d), g2.NumBlocks())
	}
	other := NewGolden(make([]byte, 4096), 512, 1)
	if d := g2.DiffBlocks(other); len(d) != g2.NumBlocks() {
		t.Fatalf("geometry-mismatch diff covers %d blocks", len(d))
	}
}

func TestMemoryApplyGolden(t *testing.T) {
	g1, g2, want := otaGoldens(t)
	m := NewShared(g1, SharedConfig{})
	changed, err := m.ApplyGolden(g2)
	if err != nil {
		t.Fatal(err)
	}
	if changed != len(want) {
		t.Fatalf("changed %d blocks, want %d", changed, len(want))
	}
	if !bytes.Equal(m.Snapshot(), g2.Bytes()) {
		t.Fatal("memory does not match the new image after ApplyGolden")
	}
	// Idempotent: a second apply flashes nothing.
	if changed, err = m.ApplyGolden(g2); err != nil || changed != 0 {
		t.Fatalf("re-apply: changed=%d err=%v", changed, err)
	}
	// Geometry mismatches are errors before any write.
	if _, err := m.ApplyGolden(NewGolden(make([]byte, 4096), 512, 1)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if _, err := m.ApplyGolden(nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestApplyGoldenHonorsLocks(t *testing.T) {
	g1, g2, want := otaGoldens(t)
	m := NewShared(g1, SharedConfig{})
	m.Lock(want[0])
	changed, err := m.ApplyGolden(g2)
	if err == nil {
		t.Fatal("flash into a locked block succeeded")
	}
	if changed != 0 {
		t.Fatalf("flashed %d blocks before the lock fault", changed)
	}
}
