package mem

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// newTestGolden builds a 16-block golden image with deterministic
// pseudorandom non-ROM content.
func newTestGolden(t *testing.T) *Golden {
	t.Helper()
	return RandomGolden(1024, 64, 2, rand.New(rand.NewPCG(42, 0)))
}

func TestGoldenGeometry(t *testing.T) {
	g := newTestGolden(t)
	if g.Size() != 1024 || g.BlockSize() != 64 || g.NumBlocks() != 16 || g.ROMBlocks() != 2 {
		t.Fatalf("layout: size=%d bs=%d n=%d rom=%d", g.Size(), g.BlockSize(), g.NumBlocks(), g.ROMBlocks())
	}
}

func TestNewGoldenCopiesInput(t *testing.T) {
	raw := make([]byte, 128)
	for i := range raw {
		raw[i] = byte(i)
	}
	g := NewGolden(raw, 64, 0)
	raw[0] = 0xFF
	if g.Bytes()[0] != 0 {
		t.Fatal("NewGolden aliased its input; mutations leaked into the golden image")
	}
}

func TestNewGoldenPanicsOnBadGeometry(t *testing.T) {
	cases := []struct {
		size, bs, rom int
	}{
		{100, 0, 0},
		{0, 64, 0},
		{100, 64, 0}, // not a multiple
		{128, 64, 3},
		{128, 64, -1},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewGolden(%d,%d,%d) did not panic", i, c.size, c.bs, c.rom)
				}
			}()
			NewGolden(make([]byte, c.size), c.bs, c.rom)
		}()
	}
}

func TestSharedReadsGoldenContent(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	got := make([]byte, g.Size())
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, g.Bytes()) {
		t.Fatal("fresh shared memory does not read back the golden image")
	}
	if m.DirtyBlocks() != 0 {
		t.Fatalf("reads materialized %d blocks", m.DirtyBlocks())
	}
	if m.SharedGolden() != g {
		t.Fatal("SharedGolden does not return the backing image")
	}
}

func TestSharedMaterializeOnWrite(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	// An 80-byte write at offset 200 straddles blocks 3 and 4.
	p := bytes.Repeat([]byte{0xAB}, 80)
	if err := m.Write(200, p); err != nil {
		t.Fatal(err)
	}
	if m.DirtyBlocks() != 2 {
		t.Fatalf("dirty blocks = %d, want 2", m.DirtyBlocks())
	}
	for i := 0; i < g.NumBlocks(); i++ {
		want := i != 3 && i != 4
		if m.BlockClean(i) != want {
			t.Fatalf("BlockClean(%d) = %v, want %v", i, m.BlockClean(i), want)
		}
	}
	got := make([]byte, len(p))
	if err := m.Read(200, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("written content did not read back")
	}
	// The golden image itself must be untouched.
	if !bytes.Equal(g.Block(3), g.Bytes()[3*64:4*64]) {
		t.Fatal("golden image mutated by a device write")
	}
	if bytes.Contains(g.Bytes(), p[:64]) {
		t.Fatal("device write leaked into the golden image")
	}
}

func TestSharedIsolation(t *testing.T) {
	g := newTestGolden(t)
	a := NewShared(g, SharedConfig{})
	b := NewShared(g, SharedConfig{})
	if err := a.Write(300, []byte("device a was here")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 17)
	if err := b.Read(300, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("device a was here")) {
		t.Fatal("write on device a visible through device b")
	}
	if b.DirtyBlocks() != 0 {
		t.Fatal("device b dirtied by device a's write")
	}
}

func TestSharedRestoreDematerializes(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	snap := m.Snapshot()
	if err := m.Write(200, bytes.Repeat([]byte{0xCC}, 100)); err != nil {
		t.Fatal(err)
	}
	if m.DirtyBlocks() == 0 {
		t.Fatal("write did not materialize")
	}
	gens := make([]uint64, m.NumBlocks())
	for i := range gens {
		gens[i] = m.Generation(i)
	}
	m.Restore(snap)
	if m.DirtyBlocks() != 0 {
		t.Fatalf("restore to golden left %d materialized blocks", m.DirtyBlocks())
	}
	// Restore is still a mutation: every generation must have advanced,
	// even for blocks whose bytes went back to golden, so digest caches
	// re-validate rather than serve stale entries.
	for i := range gens {
		if m.Generation(i) <= gens[i] {
			t.Fatalf("block %d generation did not advance across Restore", i)
		}
	}
	got := make([]byte, g.Size())
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, g.Bytes()) {
		t.Fatal("restore did not recover golden content")
	}
}

func TestSharedRestoreToNonGolden(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	want := make([]byte, g.Size())
	copy(want, g.Bytes())
	copy(want[512:], "divergent state") // fully inside block 8
	m.Restore(want)
	got := m.Snapshot()
	if !bytes.Equal(got, want) {
		t.Fatal("restore to non-golden state did not stick")
	}
	if m.DirtyBlocks() != 1 {
		t.Fatalf("dirty blocks = %d, want 1 (only the divergent block)", m.DirtyBlocks())
	}
}

func TestSnapshotIntoReusesBuffer(t *testing.T) {
	m := New(Config{Size: 1024, BlockSize: 64})
	m.FillRandom(rand.New(rand.NewPCG(7, 0)))
	buf := make([]byte, 0, 2048)
	s1 := m.SnapshotInto(buf)
	if &s1[0] != &buf[:1][0] {
		t.Fatal("SnapshotInto did not reuse the caller's buffer")
	}
	if !bytes.Equal(s1, m.Snapshot()) {
		t.Fatal("SnapshotInto content differs from Snapshot")
	}
	// Undersized destination must still work (reallocates).
	s2 := m.SnapshotInto(make([]byte, 0, 16))
	if !bytes.Equal(s2, s1) {
		t.Fatal("SnapshotInto with small buffer produced wrong content")
	}
}

func TestSharedSnapshotMatchesFlat(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	if err := m.Write(130, []byte("mutation")); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, g.Size())
	copy(want, g.Bytes())
	copy(want[130:], "mutation")
	if !bytes.Equal(m.Snapshot(), want) {
		t.Fatal("COW snapshot differs from expected flat content")
	}
}

// TestFillRandomBackingIndependent pins that FillRandom produces the
// same content for a given seed regardless of flat vs copy-on-write
// backing — device provisioning must not depend on the storage layout.
func TestFillRandomBackingIndependent(t *testing.T) {
	cases := []struct {
		size, bs, rom int
	}{
		{1024, 64, 2},
		{100, 20, 0}, // 8-byte words straddle 20-byte blocks; 4-byte tail
		{960, 64, 0},
	}
	for _, c := range cases {
		flat := New(Config{Size: c.size, BlockSize: c.bs, ROMBlocks: c.rom})
		flat.FillRandom(rand.New(rand.NewPCG(9, 1)))

		g := RandomGolden(c.size, c.bs, c.rom, rand.New(rand.NewPCG(1, 2)))
		cow := NewShared(g, SharedConfig{})
		cow.FillRandom(rand.New(rand.NewPCG(9, 1)))

		if !bytes.Equal(flat.Snapshot(), cow.Snapshot()) {
			t.Fatalf("size %d bs %d: FillRandom content differs between flat and COW backing", c.size, c.bs)
		}
	}
}

func TestSharedRawFlattens(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	if err := m.Write(130, []byte("mutation")); err != nil {
		t.Fatal(err)
	}
	want := m.Snapshot()
	raw := m.Raw()
	if !bytes.Equal(raw, want) {
		t.Fatal("Raw() content differs from snapshot")
	}
	// Raw grants direct mutable access (bypassing ROM/lock guards), so
	// the memory must have detached from the shared golden image.
	raw[0] ^= 0xFF
	if g.Bytes()[0] == raw[0] {
		t.Fatal("Raw() aliases the shared golden image")
	}
	if m.SharedGolden() != nil {
		t.Fatal("memory still reports a shared golden after flattening")
	}
	got := make([]byte, 1)
	if err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != raw[0] {
		t.Fatal("Raw() result not wired into subsequent reads")
	}
}

func TestSharedROMStillGuarded(t *testing.T) {
	g := newTestGolden(t)
	m := NewShared(g, SharedConfig{})
	if err := m.Write(10, []byte{1}); err == nil {
		t.Fatal("write into ROM block succeeded on shared memory")
	}
	if m.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", m.Faults())
	}
}

func TestGoldenFromMemoryRoundTrip(t *testing.T) {
	flat := New(Config{Size: 512, BlockSize: 64, ROMBlocks: 1})
	flat.FillRandom(rand.New(rand.NewPCG(3, 3)))
	g := GoldenFromMemory(flat)
	if !bytes.Equal(g.Bytes(), flat.Snapshot()) {
		t.Fatal("GoldenFromMemory content differs from source")
	}
	if g.BlockSize() != 64 || g.ROMBlocks() != 1 || g.NumBlocks() != 8 {
		t.Fatal("GoldenFromMemory geometry differs from source")
	}
	// Sealing must snapshot, not alias: later writes to the source do
	// not change the golden.
	if err := flat.Write(100, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if g.Bytes()[100] == 0xEE {
		t.Fatal("golden image aliases the source memory")
	}
}
