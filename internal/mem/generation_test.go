package mem

import (
	"math/rand/v2"
	"testing"
)

// Every mutation path must bump the touched blocks' generations: digest
// caches key on them, and a path that forgot would let a stale cached
// digest mask malware (see internal/inccache).

func TestGenerationBumpsOnWrite(t *testing.T) {
	m := newTestMem(t)
	if g := m.Generation(5); g != 0 {
		t.Fatalf("fresh memory generation = %d, want 0", g)
	}
	if err := m.Write(5*64+10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(5); g != 1 {
		t.Fatalf("generation after write = %d, want 1", g)
	}
	if g := m.Generation(4); g != 0 {
		t.Fatalf("untouched neighbor generation = %d, want 0", g)
	}
}

func TestGenerationBumpsAllSpannedBlocks(t *testing.T) {
	m := newTestMem(t)
	// Write spanning blocks 5 and 6.
	if err := m.Write(5*64+60, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if m.Generation(5) != 1 || m.Generation(6) != 1 {
		t.Fatalf("spanned blocks generations = %d, %d, want 1, 1",
			m.Generation(5), m.Generation(6))
	}
}

func TestGenerationBumpsOnWriteBlockAndPoke(t *testing.T) {
	m := newTestMem(t)
	if err := m.WriteBlock(3, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := m.Poke(3*64+7, 0xAA); err != nil {
		t.Fatal(err)
	}
	if g := m.Generation(3); g != 2 {
		t.Fatalf("generation after WriteBlock+Poke = %d, want 2", g)
	}
}

func TestGenerationNotBumpedOnDeniedWrite(t *testing.T) {
	m := newTestMem(t)
	m.Lock(7)
	if err := m.Write(7*64, []byte{1}); err == nil {
		t.Fatal("locked write succeeded")
	}
	if g := m.Generation(7); g != 0 {
		t.Fatalf("denied write bumped generation to %d", g)
	}
	if err := m.Write(10, []byte{1}); err == nil { // ROM
		t.Fatal("ROM write succeeded")
	}
	if g := m.Generation(0); g != 0 {
		t.Fatalf("denied ROM write bumped generation to %d", g)
	}
}

func TestGenerationBumpsOnRestoreAndFillRandom(t *testing.T) {
	m := newTestMem(t)
	snap := m.Snapshot()
	m.Restore(snap)
	// Restore may not change content, but it must still invalidate: the
	// cache cannot tell, so every block bumps.
	for b := 0; b < m.NumBlocks(); b++ {
		if m.Generation(b) != 1 {
			t.Fatalf("block %d generation after Restore = %d, want 1", b, m.Generation(b))
		}
	}
	m.FillRandom(rand.New(rand.NewPCG(1, 1)))
	for b := m.ROMBlocks(); b < m.NumBlocks(); b++ {
		if m.Generation(b) != 2 {
			t.Fatalf("block %d generation after FillRandom = %d, want 2", b, m.Generation(b))
		}
	}
	// FillRandom skips ROM and must not bump it.
	if m.Generation(0) != 1 {
		t.Fatalf("ROM generation after FillRandom = %d, want 1", m.Generation(0))
	}
}

func TestWriteLogBoundedRing(t *testing.T) {
	m := New(Config{Size: 256, BlockSize: 64, LogWrites: true, LogLimit: 3})
	for i := 0; i < 5; i++ {
		if err := m.Poke(i%4*64, byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	log := m.WriteLog()
	if len(log) != 3 {
		t.Fatalf("log has %d entries, want 3", len(log))
	}
	// Oldest two dropped: blocks 2, 3, 0 remain, in chronological order.
	for i, wantBlock := range []int{2, 3, 0} {
		if log[i].Block != wantBlock {
			t.Fatalf("log[%d].Block = %d, want %d (log %+v)", i, log[i].Block, wantBlock, log)
		}
	}
	if d := m.DroppedWrites(); d != 2 {
		t.Fatalf("DroppedWrites = %d, want 2", d)
	}
}

func TestWriteLogUnboundedByDefault(t *testing.T) {
	m := New(Config{Size: 256, BlockSize: 64, LogWrites: true})
	for i := 0; i < 100; i++ {
		_ = m.Poke(0, byte(i))
	}
	if len(m.WriteLog()) != 100 || m.DroppedWrites() != 0 {
		t.Fatalf("unbounded log: %d entries, %d dropped", len(m.WriteLog()), m.DroppedWrites())
	}
}

func TestWriteLogDisabledCostsNothing(t *testing.T) {
	m := New(Config{Size: 256, BlockSize: 64})
	_ = m.Poke(0, 1)
	if m.WriteLog() != nil {
		t.Fatal("log recorded with LogWrites off")
	}
}

func TestNegativeLogLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Size: 256, BlockSize: 64, LogWrites: true, LogLimit: -1})
}

// Restore is content-only re-provisioning: it must not disturb the
// protection state (locks) or the accounting (faults, write log).
func TestRestorePreservesLocksAndFaults(t *testing.T) {
	m := newTestMem(t)
	snap := m.Snapshot()
	m.Lock(5)
	_ = m.Write(5*64, []byte{1}) // denied: 1 fault
	logLen := len(m.WriteLog())
	m.Restore(snap)
	if !m.Locked(5) {
		t.Fatal("Restore cleared a lock")
	}
	if m.Faults() != 1 {
		t.Fatalf("Restore changed fault count: %d", m.Faults())
	}
	if len(m.WriteLog()) != logLen {
		t.Fatal("Restore changed the write log")
	}
	// The lock still holds after restore.
	if err := m.Write(5*64, []byte{1}); err == nil {
		t.Fatal("lock not enforced after Restore")
	}
}

// Snapshot is a copy, not a view: later writes must not leak into it.
func TestSnapshotIsIsolatedCopy(t *testing.T) {
	m := newTestMem(t)
	snap := m.Snapshot()
	if err := m.Poke(500, 0xFF); err != nil {
		t.Fatal(err)
	}
	if snap[500] == 0xFF {
		t.Fatal("snapshot aliases live memory")
	}
}
