package cmac

import (
	"bytes"
	"encoding/hex"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// RFC 4493 §4 test vectors.
var rfcKey, _ = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")

var rfcMsg, _ = hex.DecodeString(
	"6bc1bee22e409f96e93d7e117393172a" +
		"ae2d8a571e03ac9c9eb76fac45af8e51" +
		"30c81c46a35ce411e5fbc1191a0a52ef" +
		"f69f2445df4f9b17ad2b417be66c3710")

func TestRFC4493Vectors(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, c := range cases {
		h, err := New(rfcKey)
		if err != nil {
			t.Fatal(err)
		}
		h.Write(rfcMsg[:c.n])
		got := hex.EncodeToString(h.Sum(nil))
		if got != c.want {
			t.Errorf("CMAC over %d bytes:\n got %s\nwant %s", c.n, got, c.want)
		}
	}
}

func TestKeySizes(t *testing.T) {
	for _, n := range []int{16, 24, 32} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("key size %d rejected: %v", n, err)
		}
	}
	if _, err := New(make([]byte, 15)); err == nil {
		t.Error("bad key size accepted")
	}
}

func TestInterfaceContract(t *testing.T) {
	h, _ := New(rfcKey)
	if h.Size() != 16 || h.BlockSize() != 16 {
		t.Fatal("sizes")
	}
	h.Write([]byte("abc"))
	first := h.Sum(nil)
	if !bytes.Equal(first, h.Sum(nil)) {
		t.Fatal("Sum not idempotent")
	}
	h.Write([]byte("def"))
	h2, _ := New(rfcKey)
	h2.Write([]byte("abcdef"))
	if !bytes.Equal(h.Sum(nil), h2.Sum(nil)) {
		t.Fatal("incremental != one-shot")
	}
	h.Reset()
	h.Write([]byte("abc"))
	if !bytes.Equal(h.Sum(nil), first) {
		t.Fatal("Reset broken")
	}
	// Sum appends.
	out := h.Sum([]byte{9})
	if out[0] != 9 || len(out) != 17 {
		t.Fatal("Sum append")
	}
}

// Property: arbitrary write splits never change the tag (exercises the
// block-buffering paths, including exact multiples of 16).
func TestPropertySplitInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xCC))
		msg := make([]byte, rng.IntN(200))
		for i := range msg {
			msg[i] = byte(rng.Uint32())
		}
		whole, _ := New(rfcKey)
		whole.Write(msg)
		want := whole.Sum(nil)

		split, _ := New(rfcKey)
		for off := 0; off < len(msg); {
			n := 1 + rng.IntN(40)
			if off+n > len(msg) {
				n = len(msg) - off
			}
			split.Write(msg[off : off+n])
			off += n
		}
		return bytes.Equal(split.Sum(nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Distinct keys and messages give distinct tags (sanity, not proof).
func TestDistinctness(t *testing.T) {
	h1, _ := New(rfcKey)
	h1.Write([]byte("m"))
	k2 := append([]byte(nil), rfcKey...)
	k2[0] ^= 1
	h2, _ := New(k2)
	h2.Write([]byte("m"))
	if bytes.Equal(h1.Sum(nil), h2.Sum(nil)) {
		t.Fatal("key independence")
	}
	h3, _ := New(rfcKey)
	h3.Write([]byte("n"))
	if bytes.Equal(h1.Sum(nil), h3.Sum(nil)) {
		t.Fatal("message independence")
	}
	// Length-extension-shaped inputs differ (the K1/K2 split at work).
	h4, _ := New(rfcKey)
	h4.Write(make([]byte, 16))
	h5, _ := New(rfcKey)
	h5.Write(make([]byte, 15))
	if bytes.Equal(h4.Sum(nil), h5.Sum(nil)) {
		t.Fatal("padding ambiguity")
	}
}
