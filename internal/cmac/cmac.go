// Package cmac implements AES-CMAC (RFC 4493, the modern form of the
// AES-CBC-MAC family the paper's §2.4 names as the encryption-based
// measurement option: "a Message Authentication Code (MAC), based
// either on hashing (e.g., HMAC-SHA-2) or encryption (e.g.,
// AES-CBC-MAC)"). Plain CBC-MAC is insecure for variable-length
// messages; CMAC is its standardized fix, built only on the standard
// library's AES.
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"hash"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// Size is the tag size in bytes.
const Size = 16

type cmac struct {
	block  cipher.Block
	k1, k2 [BlockSize]byte
	x      [BlockSize]byte // running CBC state
	buf    [BlockSize]byte
	nbuf   int
}

// New returns an AES-CMAC hash.Hash for a 16-, 24- or 32-byte key.
func New(key []byte) (hash.Hash, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cmac: %w", err)
	}
	c := &cmac{block: block}
	c.deriveSubkeys()
	return c, nil
}

// deriveSubkeys computes K1 and K2 per RFC 4493 §2.3.
func (c *cmac) deriveSubkeys() {
	var l [BlockSize]byte
	c.block.Encrypt(l[:], l[:])
	shiftAndXor(&c.k1, l)
	shiftAndXor(&c.k2, c.k1)
}

// shiftAndXor sets dst = (src << 1), xoring the Rb constant if the
// shifted-out bit was set.
func shiftAndXor(dst *[BlockSize]byte, src [BlockSize]byte) {
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[BlockSize-1] ^= 0x87 // Rb for 128-bit blocks
	}
}

func (c *cmac) Size() int      { return Size }
func (c *cmac) BlockSize() int { return BlockSize }

func (c *cmac) Reset() {
	c.x = [BlockSize]byte{}
	c.nbuf = 0
}

func (c *cmac) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		// Keep at least one byte buffered: the final block needs
		// special treatment.
		if c.nbuf == BlockSize {
			c.cbcStep(c.buf[:])
			c.nbuf = 0
		}
		take := BlockSize - c.nbuf
		if take > len(p) {
			take = len(p)
		}
		copy(c.buf[c.nbuf:], p[:take])
		c.nbuf += take
		p = p[take:]
	}
	return n, nil
}

// cbcStep absorbs one full block into the CBC state.
func (c *cmac) cbcStep(block []byte) {
	for i := 0; i < BlockSize; i++ {
		c.x[i] ^= block[i]
	}
	c.block.Encrypt(c.x[:], c.x[:])
}

func (c *cmac) Sum(b []byte) []byte {
	// Finalize a copy so further Writes remain valid.
	cc := *c
	var last [BlockSize]byte
	if cc.nbuf == BlockSize {
		// Complete final block: xor K1.
		for i := 0; i < BlockSize; i++ {
			last[i] = cc.buf[i] ^ cc.k1[i]
		}
	} else {
		// Partial (or empty) final block: pad 10*..., xor K2.
		copy(last[:], cc.buf[:cc.nbuf])
		last[cc.nbuf] = 0x80
		for i := 0; i < BlockSize; i++ {
			last[i] ^= cc.k2[i]
		}
	}
	cc.cbcStep(last[:])
	return append(b, cc.x[:]...)
}
