// Package services implements the two security services the paper's
// introduction names as built on top of RA (§1): "RA ... can also be
// used to construct other security services, such as software updates
// [25] and secure deletion [21]".
//
//   - SecureUpdate (SCUBA-style): the verifier ships an authenticated
//     code update; the prover's ROM agent verifies and installs it and
//     the next attestation — against the updated golden image — proves
//     the installation.
//   - Proof of Secure Erasure (Perito–Tsudik-style): the verifier sends
//     a seed; the prover overwrites ALL writable memory with the seeded
//     pseudorandom stream and MACs the result. Because the device has
//     no spare memory to stash anything, a correct proof implies
//     nothing else — malware included — survived.
package services

import (
	"bytes"
	"crypto/hmac"
	"encoding/binary"
	"fmt"

	"saferatt/internal/channel"
	"saferatt/internal/core"
	"saferatt/internal/device"
	"saferatt/internal/sim"
	"saferatt/internal/suite"
)

// Protocol message kinds.
const (
	MsgUpdate     = "update"      // Vrf -> Prv: *Update
	MsgUpdateAck  = "update-ack"  // Prv -> Vrf: *UpdateAck
	MsgEraseReq   = "erase-req"   // Vrf -> Prv: *EraseRequest
	MsgEraseProof = "erase-proof" // Prv -> Vrf: *EraseProof
)

// Update is an authenticated single-block software update.
type Update struct {
	Seq     uint64
	Block   int
	Content []byte
	Tag     []byte // MAC(key, "update" || seq || block || content)
}

// UpdateAck acknowledges installation.
type UpdateAck struct {
	Seq       uint64
	OK        bool
	Reason    string
	AppliedAt sim.Time
}

// EraseRequest starts a proof-of-secure-erasure round.
type EraseRequest struct {
	Seq  uint64
	Seed []byte
}

// EraseProof is the prover's response: a MAC over the whole
// post-erasure memory.
type EraseProof struct {
	Seq   uint64
	Tag   []byte
	TS    sim.Time
	TE    sim.Time
	Bytes int // writable bytes overwritten
}

// updateTag computes the update authenticator.
func updateTag(key []byte, seq uint64, block int, content []byte) []byte {
	mac, err := suite.NewMAC(suite.SHA256, key)
	if err != nil {
		panic("services: " + err.Error())
	}
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], seq)
	binary.BigEndian.PutUint64(hdr[8:], uint64(block))
	mac.Write([]byte("update"))
	mac.Write(hdr[:])
	mac.Write(content)
	return mac.Sum(nil)
}

// eraseStream fills dst with the deterministic erasure stream for the
// given seed: PRF-expanded, so prover and verifier derive identical
// content without shipping megabytes.
func eraseStream(key, seed []byte, dst []byte) {
	var ctr uint64
	for off := 0; off < len(dst); {
		blockKey := core.PRF(key, "erase:"+string(seed), ctr)
		n := copy(dst[off:], blockKey)
		off += n
		ctr++
	}
}

// Agent is the prover-side ROM service handling updates and erasure
// requests. Its work runs as device task steps, so it competes for the
// CPU like any other code and its writes pass the MPU.
type Agent struct {
	Name string
	Dev  *device.Device
	Link *channel.Link

	task    *device.Task
	lastSeq uint64
	// Installed counts applied updates; Erasures counts completed
	// erasure rounds.
	Installed int
	Erasures  int
}

// NewAgent wires the service agent onto the link. prio is the agent's
// task priority (update installation is typically not time-critical).
func NewAgent(name string, dev *device.Device, link *channel.Link, prio int) *Agent {
	a := &Agent{Name: name, Dev: dev, Link: link}
	a.task = dev.NewTask("svc:"+name, prio)
	link.Connect(name, a.onMessage)
	return a
}

func (a *Agent) onMessage(m channel.Message) {
	switch m.Kind {
	case MsgUpdate:
		if u, ok := m.Payload.(*Update); ok {
			a.handleUpdate(m.From, u)
		}
	case MsgEraseReq:
		if r, ok := m.Payload.(*EraseRequest); ok {
			a.handleErase(m.From, r)
		}
	}
}

func (a *Agent) handleUpdate(from string, u *Update) {
	nack := func(reason string) {
		a.Link.Send(a.Name, from, MsgUpdateAck, &UpdateAck{Seq: u.Seq, Reason: reason})
	}
	want := updateTag(a.Dev.AttestationKey, u.Seq, u.Block, u.Content)
	if !hmac.Equal(want, u.Tag) {
		nack("bad update authenticator")
		return
	}
	if u.Seq <= a.lastSeq {
		nack("stale update sequence (replay?)")
		return
	}
	if len(u.Content) != a.Dev.Mem.BlockSize() {
		nack(fmt.Sprintf("update is %d bytes, want one %d-byte block", len(u.Content), a.Dev.Mem.BlockSize()))
		return
	}
	// Install as a task step charged with the copy cost.
	a.task.Submit(a.Dev.Profile.CopyTime(len(u.Content)), func() {
		if err := a.Dev.Mem.WriteBlock(u.Block, u.Content); err != nil {
			nack("install failed: " + err.Error())
			return
		}
		a.lastSeq = u.Seq
		a.Installed++
		a.Link.Send(a.Name, from, MsgUpdateAck, &UpdateAck{
			Seq: u.Seq, OK: true, AppliedAt: a.Dev.Kernel.Now(),
		})
	})
}

// handleErase performs the PoSE protocol: overwrite every writable
// block with the seeded stream, then MAC all of memory. The routine
// runs atomically — PoSE is only sound if nothing else can run and
// re-derive state while memory is being wiped.
func (a *Agent) handleErase(from string, req *EraseRequest) {
	memory := a.Dev.Mem
	rom := memory.ROMBlocks()
	bs := memory.BlockSize()
	writable := (memory.NumBlocks() - rom) * bs
	stream := make([]byte, writable)
	eraseStream(a.Dev.AttestationKey, req.Seed, stream)

	a.Dev.DisableInterrupts(a.task)
	ts := a.Dev.Kernel.Now()
	// One step per block: wipe cost is real wall time on the device.
	var wipe func(b int)
	wipe = func(b int) {
		if b >= memory.NumBlocks() {
			a.finishErase(from, req, ts, writable)
			return
		}
		a.task.Submit(a.Dev.Profile.CopyTime(bs), func() {
			off := (b - rom) * bs
			if err := memory.WriteBlock(b, stream[off:off+bs]); err != nil {
				// Nothing is locked during PoSE; fail loudly if the
				// model changes.
				panic("services: erase write failed: " + err.Error())
			}
			wipe(b + 1)
		})
	}
	wipe(rom)
}

func (a *Agent) finishErase(from string, req *EraseRequest, ts sim.Time, wiped int) {
	memory := a.Dev.Mem
	cost := a.Dev.Profile.MACTime(suite.SHA256, memory.Size())
	a.task.Submit(cost, func() {
		mac, err := suite.NewMAC(suite.SHA256, a.Dev.AttestationKey)
		if err != nil {
			panic("services: " + err.Error())
		}
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], req.Seq)
		mac.Write([]byte("erase-proof"))
		mac.Write(hdr[:])
		mac.Write(req.Seed)
		mac.Write(memory.Raw())
		a.Dev.EnableInterrupts()
		a.Erasures++
		a.Link.Send(a.Name, from, MsgEraseProof, &EraseProof{
			Seq: req.Seq, Tag: mac.Sum(nil), TS: ts, TE: a.Dev.Kernel.Now(), Bytes: wiped,
		})
	})
}

// Manager is the verifier-side service driver.
type Manager struct {
	Name string
	Link *channel.Link
	Key  []byte // shared attestation key
	// ROMImage is the immutable ROM prefix of the golden image, needed
	// to recompute erase proofs.
	ROMImage  []byte
	BlockSize int
	MemSize   int

	seq uint64
	// Pending callbacks by sequence number.
	updateCb map[uint64]func(*UpdateAck)
	eraseCb  map[uint64]func(ok bool, proof *EraseProof)
	eraseReq map[uint64]*EraseRequest
}

// NewManager wires the service manager onto the link under name.
func NewManager(name string, link *channel.Link, key, romImage []byte, blockSize, memSize int) *Manager {
	m := &Manager{
		Name: name, Link: link, Key: key, ROMImage: romImage,
		BlockSize: blockSize, MemSize: memSize,
		updateCb: map[uint64]func(*UpdateAck){},
		eraseCb:  map[uint64]func(bool, *EraseProof){},
		eraseReq: map[uint64]*EraseRequest{},
	}
	link.Connect(name, m.onMessage)
	return m
}

// PushUpdate ships an authenticated update for one block and invokes
// done with the prover's acknowledgment.
func (m *Manager) PushUpdate(prover string, block int, content []byte, done func(*UpdateAck)) *Update {
	m.seq++
	u := &Update{
		Seq: m.seq, Block: block,
		Content: append([]byte(nil), content...),
		Tag:     updateTag(m.Key, m.seq, block, content),
	}
	if done != nil {
		m.updateCb[u.Seq] = done
	}
	m.Link.Send(m.Name, prover, MsgUpdate, u)
	return u
}

// RequestErasure starts a PoSE round with a fresh seed; done receives
// the verification outcome.
func (m *Manager) RequestErasure(prover string, done func(ok bool, proof *EraseProof)) *EraseRequest {
	m.seq++
	req := &EraseRequest{Seq: m.seq, Seed: core.PRF(m.Key, "erase-seed", m.seq)[:16]}
	if done != nil {
		m.eraseCb[req.Seq] = done
	}
	m.eraseReq[req.Seq] = req
	m.Link.Send(m.Name, prover, MsgEraseReq, req)
	return req
}

func (m *Manager) onMessage(msg channel.Message) {
	switch msg.Kind {
	case MsgUpdateAck:
		if ack, ok := msg.Payload.(*UpdateAck); ok {
			if cb := m.updateCb[ack.Seq]; cb != nil {
				delete(m.updateCb, ack.Seq)
				cb(ack)
			}
		}
	case MsgEraseProof:
		if proof, ok := msg.Payload.(*EraseProof); ok {
			cb := m.eraseCb[proof.Seq]
			req := m.eraseReq[proof.Seq]
			delete(m.eraseCb, proof.Seq)
			delete(m.eraseReq, proof.Seq)
			if cb != nil {
				cb(req != nil && m.verifyErasure(req, proof), proof)
			}
		}
	}
}

// verifyErasure recomputes the expected post-erasure memory image and
// checks the proof MAC.
func (m *Manager) verifyErasure(req *EraseRequest, proof *EraseProof) bool {
	expected := make([]byte, m.MemSize)
	copy(expected, m.ROMImage)
	eraseStream(m.Key, req.Seed, expected[len(m.ROMImage):])

	mac, err := suite.NewMAC(suite.SHA256, m.Key)
	if err != nil {
		return false
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], req.Seq)
	mac.Write([]byte("erase-proof"))
	mac.Write(hdr[:])
	mac.Write(req.Seed)
	mac.Write(expected)
	return bytes.Equal(mac.Sum(nil), proof.Tag)
}

// ExpectedMemoryAfterErasure returns the image the device must hold
// after a successful PoSE round (for re-provisioning golden images).
func (m *Manager) ExpectedMemoryAfterErasure(req *EraseRequest) []byte {
	expected := make([]byte, m.MemSize)
	copy(expected, m.ROMImage)
	eraseStream(m.Key, req.Seed, expected[len(m.ROMImage):])
	return expected
}
