package services

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"saferatt/internal/channel"
	"saferatt/internal/core"
	"saferatt/internal/costmodel"
	"saferatt/internal/device"
	"saferatt/internal/malware"
	"saferatt/internal/mem"
	"saferatt/internal/sim"
	"saferatt/internal/suite"
	"saferatt/internal/verifier"
)

type svcWorld struct {
	k     *sim.Kernel
	m     *mem.Memory
	dev   *device.Device
	link  *channel.Link
	agent *Agent
	mgr   *Manager
}

func newSvcWorld(t *testing.T) *svcWorld {
	t.Helper()
	k := sim.NewKernel()
	m := mem.New(mem.Config{Size: 4096, BlockSize: 256, ROMBlocks: 1, Clock: k.Now})
	m.FillRandom(rand.New(rand.NewPCG(7, 7)))
	dev := device.New(device.Config{Kernel: k, Mem: m, Profile: costmodel.ODROIDXU4()})
	link := channel.New(channel.Config{Kernel: k, Latency: sim.Millisecond})
	agent := NewAgent("prv", dev, link, 5)
	rom := append([]byte(nil), m.Snapshot()[:256]...)
	mgr := NewManager("mgr", link, dev.AttestationKey, rom, 256, 4096)
	return &svcWorld{k: k, m: m, dev: dev, link: link, agent: agent, mgr: mgr}
}

func TestSecureUpdateRoundTrip(t *testing.T) {
	w := newSvcWorld(t)
	newCode := bytes.Repeat([]byte{0xC0}, 256)
	var ack *UpdateAck
	w.mgr.PushUpdate("prv", 5, newCode, func(a *UpdateAck) { ack = a })
	w.k.Run()

	if ack == nil || !ack.OK {
		t.Fatalf("ack: %+v", ack)
	}
	if !bytes.Equal(w.m.Block(5), newCode) {
		t.Fatal("update not installed")
	}
	if w.agent.Installed != 1 {
		t.Fatal("install not counted")
	}

	// The post-update attestation story: verifier updates its golden
	// image and a normal attestation confirms installation.
	opts := core.Preset(core.SMART, suite.SHA256)
	golden := w.m.Snapshot()
	v, err := verifier.New(verifier.Config{
		Kernel: w.k, Link: w.link,
		Scheme:  suite.Scheme{Hash: suite.SHA256, Key: w.dev.AttestationKey},
		PermKey: w.dev.AttestationKey,
		Ref:     golden,
		Opts:    opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewProver("prv-att", w.dev, w.link, opts, 10); err != nil {
		t.Fatal(err)
	}
	v.Challenge("prv-att")
	w.k.Run()
	if res, ok := v.LastResult(); !ok || !res.OK {
		t.Fatalf("post-update attestation failed: %+v", res)
	}
}

func TestUpdateForgeryRejected(t *testing.T) {
	w := newSvcWorld(t)
	content := bytes.Repeat([]byte{1}, 256)
	u := &Update{Seq: 99, Block: 5, Content: content, Tag: []byte("forged")}
	var ack *UpdateAck
	w.link.Connect("mgr", func(m channel.Message) {
		if m.Kind == MsgUpdateAck {
			ack = m.Payload.(*UpdateAck)
		}
	})
	w.link.Send("mgr", "prv", MsgUpdate, u)
	w.k.Run()
	if ack == nil || ack.OK {
		t.Fatalf("forged update accepted: %+v", ack)
	}
	if w.agent.Installed != 0 {
		t.Fatal("forged update installed")
	}
}

func TestUpdateReplayRejected(t *testing.T) {
	w := newSvcWorld(t)
	content := bytes.Repeat([]byte{2}, 256)
	var first *Update
	var acks []*UpdateAck
	first = w.mgr.PushUpdate("prv", 5, content, func(a *UpdateAck) { acks = append(acks, a) })
	w.k.Run()
	// Replay the captured update verbatim.
	w.link.Connect("mgr", func(m channel.Message) {
		if m.Kind == MsgUpdateAck {
			acks = append(acks, m.Payload.(*UpdateAck))
		}
	})
	w.link.Send("mgr", "prv", MsgUpdate, first)
	w.k.Run()
	if len(acks) != 2 {
		t.Fatalf("acks: %d", len(acks))
	}
	if !acks[0].OK || acks[1].OK {
		t.Fatalf("replay handling wrong: %+v %+v", acks[0], acks[1])
	}
	if acks[1].Reason == "" {
		t.Fatal("replay rejected without reason")
	}
}

func TestUpdateWrongSizeRejected(t *testing.T) {
	w := newSvcWorld(t)
	var ack *UpdateAck
	w.mgr.PushUpdate("prv", 5, []byte{1, 2, 3}, func(a *UpdateAck) { ack = a })
	w.k.Run()
	if ack == nil || ack.OK {
		t.Fatal("short update accepted")
	}
}

func TestProofOfSecureErasure(t *testing.T) {
	w := newSvcWorld(t)
	// Malware resident before erasure.
	mw := malware.NewTransient(w.dev, 50)
	if err := mw.Infect(9); err != nil {
		t.Fatal(err)
	}

	var ok bool
	var proof *EraseProof
	req := w.mgr.RequestErasure("prv", func(o bool, p *EraseProof) { ok, proof = o, p })
	w.k.Run()

	if proof == nil || !ok {
		t.Fatalf("erasure proof rejected: ok=%v proof=%+v", ok, proof)
	}
	if proof.Bytes != 15*256 {
		t.Fatalf("wiped %d bytes, want %d", proof.Bytes, 15*256)
	}
	if proof.TE <= proof.TS {
		t.Fatal("erasure took no time")
	}
	// Memory now equals the expected post-erasure image: the malware
	// payload is gone.
	if !bytes.Equal(w.m.Snapshot(), w.mgr.ExpectedMemoryAfterErasure(req)) {
		t.Fatal("memory does not match the expected erasure image")
	}
	if bytes.Contains(w.m.Snapshot(), bytes.Repeat([]byte{0xEB}, 16)) {
		t.Fatal("malware payload survived the erasure")
	}
	if w.agent.Erasures != 1 {
		t.Fatal("erasure not counted")
	}
}

// A device that did NOT actually perform the erasure cannot pass: a
// proof tampered in flight (equivalently, computed over any memory
// other than the seeded stream) fails verification.
func TestErasureProofBindsMemory(t *testing.T) {
	k := sim.NewKernel()
	m := mem.New(mem.Config{Size: 4096, BlockSize: 256, ROMBlocks: 1, Clock: k.Now})
	m.FillRandom(rand.New(rand.NewPCG(7, 7)))
	dev := device.New(device.Config{Kernel: k, Mem: m, Profile: costmodel.ODROIDXU4()})
	adv := channel.AdversaryFunc(func(msg channel.Message) channel.Verdict {
		if msg.Kind == MsgEraseProof {
			msg.Payload.(*EraseProof).Tag[0] ^= 1
		}
		return channel.Deliver
	})
	link := channel.New(channel.Config{Kernel: k, Adv: adv})
	NewAgent("prv", dev, link, 5)
	rom := append([]byte(nil), m.Snapshot()[:256]...)
	mgr := NewManager("mgr", link, dev.AttestationKey, rom, 256, 4096)

	verdict := true
	got := false
	mgr.RequestErasure("prv", func(o bool, p *EraseProof) { verdict, got = o, true })
	k.Run()
	if !got {
		t.Fatal("no proof delivered")
	}
	if verdict {
		t.Fatal("tampered proof verified")
	}
}

// Erasure runs atomically: a concurrent task cannot interleave writes
// into already-wiped blocks.
func TestErasureIsAtomic(t *testing.T) {
	w := newSvcWorld(t)
	interloper := w.dev.NewTask("interloper", 100)
	ranDuring := false
	var eraseStartedAt sim.Time
	// Poll for the erasure starting, then try to run.
	w.k.NewTicker(10*sim.Microsecond, func(now sim.Time) {
		if w.dev.InterruptsDisabled() && eraseStartedAt == 0 {
			eraseStartedAt = now
			interloper.Submit(sim.Microsecond, func() {
				ranDuring = w.dev.InterruptsDisabled()
			})
		}
	})
	var done bool
	w.mgr.RequestErasure("prv", func(bool, *EraseProof) { done = true })
	w.k.RunUntil(sim.Time(sim.Second))
	if !done {
		t.Fatal("erasure never finished")
	}
	if eraseStartedAt == 0 {
		t.Fatal("never observed the atomic section")
	}
	if ranDuring {
		t.Fatal("interloper ran inside the atomic erasure")
	}
}

func TestEraseStreamDeterministicAndKeyed(t *testing.T) {
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	eraseStream([]byte("k"), []byte("s"), a)
	eraseStream([]byte("k"), []byte("s"), b)
	if !bytes.Equal(a, b) {
		t.Fatal("stream not deterministic")
	}
	eraseStream([]byte("k"), []byte("s2"), b)
	if bytes.Equal(a, b) {
		t.Fatal("stream ignores seed")
	}
	eraseStream([]byte("k2"), []byte("s"), b)
	if bytes.Equal(a, b) {
		t.Fatal("stream ignores key")
	}
}
