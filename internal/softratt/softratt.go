// Package softratt implements software-based remote attestation in the
// style of Pioneer (§2.1): no ROM key, no MPU — just "a one-time
// special checksum function that covers memory in an unpredictable
// (rather than contiguous) fashion", verified by TIMING. Any malware
// that redirects the checksum's memory reads (to hide its presence)
// pays extra latency per access, and the verifier rejects responses
// that arrive late.
//
// The package also reproduces why this approach is fragile ("security
// of this approach is uncertain after several attacks", citing
// Castelluccia et al.): the verifier's time threshold must absorb
// network jitter, and once the jitter budget exceeds the adversary's
// redirection overhead the attack slips under the threshold — measured
// in the E9 experiment.
package softratt

import (
	"fmt"
	"math/bits"

	"saferatt/internal/channel"
	"saferatt/internal/device"
	"saferatt/internal/sim"
)

// Message kinds.
const (
	MsgSoftChallenge = "soft-challenge" // Vrf -> Prv: *Challenge
	MsgSoftResponse  = "soft-response"  // Prv -> Vrf: *Response
)

// Challenge seeds the checksum traversal.
type Challenge struct {
	Seed       uint64
	Iterations int
	SentAt     sim.Time
}

// Response carries the checksum and the prover-side compute span.
type Response struct {
	Seed     uint64
	Checksum [8]uint64
	TS, TE   sim.Time
}

// ComputeChecksum runs the Pioneer-style checksum: iterations
// pseudorandom reads over the memory image, each mixed into an 8-lane
// state with data-dependent rotation (so the computation cannot be
// reordered or parallelized trivially). It is NOT a cryptographic MAC —
// that is the point of software-based attestation — but it is strongly
// input- and order-dependent.
func ComputeChecksum(image []byte, seed uint64, iterations int) [8]uint64 {
	var state [8]uint64
	for i := range state {
		state[i] = seed ^ (0x9E3779B97F4A7C15 * uint64(i+1))
	}
	x := seed | 1
	n := uint64(len(image))
	if n == 0 {
		return state
	}
	for i := 0; i < iterations; i++ {
		// xorshift64 address generator.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addr := x % n
		v := uint64(image[addr])
		lane := i & 7
		s := state[lane]
		s = bits.RotateLeft64(s^(v*0x100000001B3), int(1+v%63))
		s += x + uint64(addr)
		state[lane] = s
		// Cross-lane diffusion.
		state[(lane+1)&7] ^= bits.RotateLeft64(s, 29)
	}
	return state
}

// Prover answers timing challenges. AccessOverhead models
// self-relocating malware interposing on memory reads: each checksum
// access costs that much extra (the "extra latency incurred by
// self-relocating malware moving itself (in parts) while trying to
// avoid being 'caught'"). Zero means an honest device.
type Prover struct {
	Name string
	Dev  *device.Device
	Link *channel.Link
	// PerAccess is the honest per-iteration cost.
	PerAccess sim.Duration
	// AccessOverhead is the adversarial extra cost per iteration.
	AccessOverhead sim.Duration
	// ChunkIterations bounds each task step (the checksum runs at top
	// priority and is effectively atomic, as Pioneer requires).
	ChunkIterations int
	// Image supplies the bytes the checksum actually reads. Honest
	// devices read live memory (the default); redirecting malware
	// serves the clean reference from hidden copies — correct checksum,
	// extra AccessOverhead per read.
	Image func() []byte

	task *device.Task
}

// NewProver wires a software-RA prover to the link.
func NewProver(name string, dev *device.Device, link *channel.Link, perAccess sim.Duration) *Prover {
	p := &Prover{
		Name: name, Dev: dev, Link: link,
		PerAccess:       perAccess,
		ChunkIterations: 4096,
	}
	p.task = dev.NewTask("softMP:"+name, 1000) // Pioneer: highest priority
	link.Connect(name, p.onMessage)
	return p
}

func (p *Prover) onMessage(m channel.Message) {
	ch, ok := m.Payload.(*Challenge)
	if !ok || m.Kind != MsgSoftChallenge {
		return
	}
	from := m.From
	per := p.PerAccess + p.AccessOverhead
	total := sim.Duration(ch.Iterations) * per
	ts := p.Dev.Kernel.Now()
	p.Dev.DisableInterrupts(p.task)
	// Model the compute as chunked steps (timing is what matters; the
	// checksum itself is computed once at the end over the live image).
	chunks := (ch.Iterations + p.ChunkIterations - 1) / p.ChunkIterations
	if chunks == 0 {
		chunks = 1
	}
	chunkDur := total / sim.Duration(chunks)
	var step func(i int)
	step = func(i int) {
		if i >= chunks {
			image := p.Dev.Mem.Raw()
			if p.Image != nil {
				image = p.Image()
			}
			sum := ComputeChecksum(image, ch.Seed, ch.Iterations)
			p.Dev.EnableInterrupts()
			p.Link.Send(p.Name, from, MsgSoftResponse, &Response{
				Seed: ch.Seed, Checksum: sum, TS: ts, TE: p.Dev.Kernel.Now(),
			})
			return
		}
		p.task.Submit(chunkDur, func() { step(i + 1) })
	}
	step(0)
}

// Verdict records one timing-verification outcome.
type Verdict struct {
	OK        bool
	Reason    string
	Elapsed   sim.Duration // challenge sent -> response received (Vrf clock)
	Threshold sim.Duration
}

// Verifier issues challenges and checks both checksum and round-trip
// time. Software-based RA has no shared key, so timing is the ONLY
// defense against redirection.
type Verifier struct {
	Name string
	Link *channel.Link
	K    *sim.Kernel
	// Ref is the golden image for checksum recomputation.
	Ref []byte
	// PerAccess is the honest per-iteration cost the verifier assumes.
	PerAccess sim.Duration
	// RTTBudget is the allowance for network round trip + jitter; the
	// threshold is compute-time + RTTBudget. Too generous a budget is
	// exactly what the §2.1 attacks exploit.
	RTTBudget sim.Duration

	pending map[uint64]*Challenge
	// Verdicts in arrival order.
	Verdicts []Verdict
	seedCtr  uint64
}

// NewVerifier wires the timing verifier to the link.
func NewVerifier(name string, k *sim.Kernel, link *channel.Link, ref []byte, perAccess, rttBudget sim.Duration) *Verifier {
	v := &Verifier{
		Name: name, Link: link, K: k, Ref: ref,
		PerAccess: perAccess, RTTBudget: rttBudget,
		pending: map[uint64]*Challenge{},
	}
	link.Connect(name, v.onMessage)
	return v
}

// Challenge issues a fresh timing challenge.
func (v *Verifier) Challenge(prover string, iterations int) *Challenge {
	v.seedCtr++
	ch := &Challenge{
		Seed:       v.seedCtr*0xD1B54A32D192ED03 + 0x2545F4914F6CDD1D,
		Iterations: iterations,
		SentAt:     v.K.Now(),
	}
	v.pending[ch.Seed] = ch
	v.Link.Send(v.Name, prover, MsgSoftChallenge, ch)
	return ch
}

func (v *Verifier) onMessage(m channel.Message) {
	resp, ok := m.Payload.(*Response)
	if !ok || m.Kind != MsgSoftResponse {
		return
	}
	ch, ok := v.pending[resp.Seed]
	if !ok {
		v.Verdicts = append(v.Verdicts, Verdict{Reason: "unsolicited response"})
		return
	}
	delete(v.pending, resp.Seed)

	elapsed := v.K.Now().Sub(ch.SentAt)
	threshold := sim.Duration(ch.Iterations)*v.PerAccess + v.RTTBudget
	verdict := Verdict{Elapsed: elapsed, Threshold: threshold}
	switch {
	case ComputeChecksum(v.Ref, ch.Seed, ch.Iterations) != resp.Checksum:
		verdict.Reason = "checksum mismatch"
	case elapsed > threshold:
		verdict.Reason = fmt.Sprintf("response too slow: %v > %v", elapsed, threshold)
	default:
		verdict.OK = true
	}
	v.Verdicts = append(v.Verdicts, verdict)
}
