package softratt

import (
	"math/rand/v2"
	"testing"

	"saferatt/internal/channel"
	"saferatt/internal/costmodel"
	"saferatt/internal/device"
	"saferatt/internal/mem"
	"saferatt/internal/sim"
)

const perAccess = 50 * sim.Nanosecond // honest per-iteration cost

type softWorld struct {
	k    *sim.Kernel
	m    *mem.Memory
	dev  *device.Device
	link *channel.Link
	v    *Verifier
	ref  []byte
}

func newSoftWorld(t *testing.T, linkCfg channel.Config, rttBudget sim.Duration) *softWorld {
	t.Helper()
	k := sim.NewKernel()
	m := mem.New(mem.Config{Size: 8192, BlockSize: 512, Clock: k.Now})
	m.FillRandom(rand.New(rand.NewPCG(5, 5)))
	dev := device.New(device.Config{Kernel: k, Mem: m, Profile: costmodel.ODROIDXU4()})
	linkCfg.Kernel = k
	link := channel.New(linkCfg)
	ref := m.Snapshot()
	v := NewVerifier("vrf", k, link, ref, perAccess, rttBudget)
	return &softWorld{k: k, m: m, dev: dev, link: link, v: v, ref: ref}
}

func TestChecksumProperties(t *testing.T) {
	img := make([]byte, 4096)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range img {
		img[i] = byte(rng.Uint32())
	}
	a := ComputeChecksum(img, 42, 10000)
	if b := ComputeChecksum(img, 42, 10000); a != b {
		t.Fatal("checksum not deterministic")
	}
	if b := ComputeChecksum(img, 43, 10000); a == b {
		t.Fatal("checksum ignores seed")
	}
	if b := ComputeChecksum(img, 42, 10001); a == b {
		t.Fatal("checksum ignores iteration count")
	}
	img[100] ^= 1
	if b := ComputeChecksum(img, 42, 10000); a == b {
		t.Fatal("checksum ignores content (single bit flip)")
	}
	// Empty image: defined, stable.
	if ComputeChecksum(nil, 1, 100) != ComputeChecksum(nil, 1, 5) {
		t.Fatal("empty-image checksum should ignore iterations")
	}
}

func TestHonestProverAcceptedOnTime(t *testing.T) {
	w := newSoftWorld(t, channel.Config{Latency: 2 * sim.Millisecond}, 5*sim.Millisecond)
	NewProver("prv", w.dev, w.link, perAccess)
	w.v.Challenge("prv", 100_000)
	w.k.Run()
	if len(w.v.Verdicts) != 1 {
		t.Fatalf("verdicts: %+v", w.v.Verdicts)
	}
	vd := w.v.Verdicts[0]
	if !vd.OK {
		t.Fatalf("honest prover rejected: %+v", vd)
	}
	if vd.Elapsed <= 0 || vd.Elapsed > vd.Threshold {
		t.Fatalf("timing: %+v", vd)
	}
}

func TestWrongMemoryFailsChecksum(t *testing.T) {
	w := newSoftWorld(t, channel.Config{}, sim.Millisecond)
	NewProver("prv", w.dev, w.link, perAccess)
	// Malware modifies memory and does NOT redirect: checksum breaks.
	if err := w.m.Poke(3000, 0xEE); err != nil {
		t.Fatal(err)
	}
	w.v.Challenge("prv", 100_000)
	w.k.Run()
	vd := w.v.Verdicts[0]
	if vd.OK || vd.Reason != "checksum mismatch" {
		t.Fatalf("verdict: %+v", vd)
	}
}

// The Pioneer defense: malware that redirects reads to hidden clean
// copies produces the RIGHT checksum but arrives LATE with a tight RTT
// budget.
func TestRedirectionCaughtByTiming(t *testing.T) {
	w := newSoftWorld(t, channel.Config{Latency: sim.Millisecond}, 3*sim.Millisecond)
	p := NewProver("prv", w.dev, w.link, perAccess)
	// Infect memory, redirect checksum reads to the clean image at
	// +40% per access.
	if err := w.m.Poke(3000, 0xEE); err != nil {
		t.Fatal(err)
	}
	p.AccessOverhead = perAccess * 4 / 10
	clean := w.ref
	p.Image = func() []byte { return clean }

	// 1M iterations: overhead = 1e6 * 20ns = 20ms >> 3ms budget.
	w.v.Challenge("prv", 1_000_000)
	w.k.Run()
	vd := w.v.Verdicts[0]
	if vd.OK {
		t.Fatalf("redirecting malware accepted: %+v", vd)
	}
	if vd.Reason == "checksum mismatch" {
		t.Fatal("redirection should produce a correct checksum")
	}
}

// The §2.1 attack: with a sloppy RTT budget (or too few iterations),
// the redirection overhead hides inside the threshold.
func TestRedirectionEscapesWithLooseThreshold(t *testing.T) {
	w := newSoftWorld(t, channel.Config{Latency: sim.Millisecond}, 50*sim.Millisecond)
	p := NewProver("prv", w.dev, w.link, perAccess)
	if err := w.m.Poke(3000, 0xEE); err != nil {
		t.Fatal(err)
	}
	p.AccessOverhead = perAccess * 4 / 10
	clean := w.ref
	p.Image = func() []byte { return clean }

	// Overhead 20ms < 50ms budget: the attack slips through.
	w.v.Challenge("prv", 1_000_000)
	w.k.Run()
	if !w.v.Verdicts[0].OK {
		t.Fatalf("attack should escape a loose threshold: %+v", w.v.Verdicts[0])
	}
}

// Iteration count is the verifier's lever: enough iterations amplify
// any per-access overhead past any fixed jitter budget.
func TestIterationsAmplifyOverhead(t *testing.T) {
	detect := func(iterations int) bool {
		w := newSoftWorld(t, channel.Config{Latency: sim.Millisecond}, 10*sim.Millisecond)
		p := NewProver("prv", w.dev, w.link, perAccess)
		p.AccessOverhead = perAccess / 10 // a careful 10% adversary
		clean := w.ref
		p.Image = func() []byte { return clean }
		w.v.Challenge("prv", iterations)
		w.k.Run()
		return !w.v.Verdicts[0].OK
	}
	if detect(100_000) {
		t.Fatal("100k iterations should NOT amplify 10% past a 10ms budget (0.5ms overhead)")
	}
	if !detect(5_000_000) {
		t.Fatal("5M iterations should amplify 10% past a 10ms budget (25ms overhead)")
	}
}

func TestChecksumRunsAtomically(t *testing.T) {
	w := newSoftWorld(t, channel.Config{}, sim.Millisecond)
	NewProver("prv", w.dev, w.link, perAccess)
	app := w.dev.NewTask("app", 500)
	var appRan sim.Time
	w.k.At(sim.Time(100*sim.Microsecond), func() {
		app.Submit(sim.Microsecond, func() { appRan = w.k.Now() })
	})
	w.v.Challenge("prv", 1_000_000) // 50ms of checksum
	w.k.Run()
	if appRan < sim.Time(50*sim.Millisecond) {
		t.Fatalf("app ran at %v, inside the atomic checksum window", appRan)
	}
}

func TestUnsolicitedResponseRejected(t *testing.T) {
	w := newSoftWorld(t, channel.Config{}, sim.Millisecond)
	w.link.Send("prv", "vrf", MsgSoftResponse, &Response{Seed: 123})
	w.k.Run()
	if len(w.v.Verdicts) != 1 || w.v.Verdicts[0].OK {
		t.Fatalf("verdicts: %+v", w.v.Verdicts)
	}
}
